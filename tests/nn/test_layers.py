"""Tests for the NN layers, norms, activations, attention and containers."""

import numpy as np
import pytest

import repro.nn as nn
from repro.autograd import Tensor


def x_img(n=2, c=3, hw=8, seed=0):
    return Tensor(np.random.default_rng(seed).standard_normal((n, c, hw, hw)).astype(np.float32))


class TestLinearConv:
    def test_linear_shapes(self):
        layer = nn.Linear(6, 4)
        assert layer(Tensor(np.ones((3, 6), dtype=np.float32))).shape == (3, 4)

    def test_linear_no_bias(self):
        layer = nn.Linear(6, 4, bias=False)
        assert layer.bias is None

    def test_conv_shapes(self):
        layer = nn.Conv2d(3, 8, 3, padding=1)
        assert layer(x_img()).shape == (2, 8, 8, 8)

    def test_conv_stride(self):
        layer = nn.Conv2d(3, 8, 3, stride=2, padding=1)
        assert layer(x_img()).shape == (2, 8, 4, 4)

    def test_conv_weight_layout(self):
        layer = nn.Conv2d(4, 6, 3, groups=2)
        assert layer.weight.shape == (6, 2, 3, 3)

    def test_embedding(self):
        emb = nn.Embedding(10, 5)
        out = emb(np.array([[0, 1, 2]]))
        assert out.shape == (1, 3, 5)

    def test_embedding_bag(self):
        emb = nn.EmbeddingBag(10, 5)
        out = emb(np.array([[0, 1], [2, 3]]))
        assert out.shape == (2, 5)

    def test_dropout_eval_identity(self):
        layer = nn.Dropout(0.9)
        layer.eval()
        x = Tensor(np.ones((4, 4), dtype=np.float32))
        assert np.allclose(layer(x).data, 1.0)

    def test_flatten(self):
        assert nn.Flatten()(x_img()).shape == (2, 3 * 8 * 8)

    def test_identity(self):
        x = Tensor(np.ones(3))
        assert nn.Identity()(x) is x


class TestNorms:
    def test_batchnorm2d_train_updates_stats(self):
        bn = nn.BatchNorm2d(3)
        bn.train()
        bn(x_img() * 5 + 2)
        assert not np.allclose(bn.running_mean, 0.0)

    def test_batchnorm_eval_does_not_update(self):
        bn = nn.BatchNorm2d(3)
        bn.eval()
        before = bn.running_mean.copy()
        bn(x_img())
        assert np.allclose(bn.running_mean, before)

    def test_batchnorm_calibration_mode_updates_in_eval(self):
        bn = nn.BatchNorm2d(3)
        bn.eval()
        bn.calibrating = True
        bn(x_img() + 4.0)
        assert not np.allclose(bn.running_mean, 0.0)

    def test_batchnorm_calibration_cumulative_average(self):
        bn = nn.BatchNorm2d(1)
        bn.eval()
        bn.reset_running_stats()
        bn.calibrating = True
        bn(Tensor(np.full((4, 1, 2, 2), 1.0, dtype=np.float32)))
        bn(Tensor(np.full((4, 1, 2, 2), 3.0, dtype=np.float32)))
        assert bn.running_mean[0] == pytest.approx(2.0, abs=1e-5)

    def test_batchnorm1d(self):
        bn = nn.BatchNorm1d(6)
        out = bn(Tensor(np.random.default_rng(0).standard_normal((8, 6)).astype(np.float32)))
        assert out.shape == (8, 6)

    def test_layernorm_shapes(self):
        ln = nn.LayerNorm(16)
        out = ln(Tensor(np.random.default_rng(0).standard_normal((2, 5, 16)).astype(np.float32)))
        assert out.shape == (2, 5, 16)

    def test_groupnorm(self):
        gn = nn.GroupNorm(2, 4)
        assert gn(x_img(c=4)).shape == (2, 4, 8, 8)

    def test_groupnorm_invalid_groups(self):
        with pytest.raises(ValueError):
            nn.GroupNorm(3, 4)


class TestActivationsPooling:
    @pytest.mark.parametrize("act_cls", [nn.ReLU, nn.GELU, nn.SiLU, nn.Sigmoid, nn.Tanh])
    def test_activation_shapes(self, act_cls):
        act = act_cls()
        x = Tensor(np.linspace(-2, 2, 12, dtype=np.float32).reshape(3, 4))
        assert act(x).shape == (3, 4)

    def test_softmax_module(self):
        out = nn.Softmax()(Tensor(np.random.default_rng(0).standard_normal((3, 5))))
        assert np.allclose(out.data.sum(axis=-1), 1.0, atol=1e-5)

    def test_maxpool(self):
        assert nn.MaxPool2d(2)(x_img()).shape == (2, 3, 4, 4)

    def test_avgpool(self):
        assert nn.AvgPool2d(2)(x_img()).shape == (2, 3, 4, 4)

    def test_adaptive_pool(self):
        assert nn.AdaptiveAvgPool2d(1)(x_img()).shape == (2, 3, 1, 1)


class TestAttention:
    def test_output_shape(self):
        attn = nn.MultiHeadSelfAttention(16, 4)
        x = Tensor(np.random.default_rng(0).standard_normal((2, 6, 16)).astype(np.float32))
        assert attn(x).shape == (2, 6, 16)

    def test_head_divisibility(self):
        with pytest.raises(ValueError):
            nn.MultiHeadSelfAttention(10, 3)

    def test_causal_mask_blocks_future(self):
        attn = nn.MultiHeadSelfAttention(8, 2, rng=np.random.default_rng(0))
        attn.eval()
        x = np.random.default_rng(1).standard_normal((1, 5, 8)).astype(np.float32)
        out1 = attn(Tensor(x), causal=True).data
        x2 = x.copy()
        x2[0, -1] += 10.0  # changing the last position must not affect earlier outputs
        out2 = attn(Tensor(x2), causal=True).data
        assert np.allclose(out1[0, :-1], out2[0, :-1], atol=1e-5)

    def test_local_window_restricts_attention(self):
        attn = nn.MultiHeadSelfAttention(8, 2, local_window=1, rng=np.random.default_rng(0))
        attn.eval()
        x = np.random.default_rng(1).standard_normal((1, 6, 8)).astype(np.float32)
        out1 = attn(Tensor(x)).data
        x2 = x.copy()
        x2[0, 5] += 10.0  # position 0 is more than 1 away from position 5
        out2 = attn(Tensor(x2)).data
        assert np.allclose(out1[0, 0], out2[0, 0], atol=1e-5)

    def test_batchmatmul_module(self):
        bmm = nn.BatchMatMul()
        a = Tensor(np.random.default_rng(0).standard_normal((2, 3, 4)))
        b = Tensor(np.random.default_rng(1).standard_normal((2, 4, 5)))
        assert bmm(a, b).shape == (2, 3, 5)

    def test_add_mul_modules(self):
        a, b = Tensor(np.ones(3)), Tensor(np.full(3, 2.0))
        assert np.allclose(nn.Add()(a, b).data, 3.0)
        assert np.allclose(nn.Mul()(a, b).data, 2.0)


class TestContainers:
    def test_sequential_runs_in_order(self):
        model = nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 2))
        assert model(Tensor(np.ones((1, 4), dtype=np.float32))).shape == (1, 2)

    def test_sequential_indexing(self):
        model = nn.Sequential(nn.Linear(4, 8), nn.ReLU())
        assert isinstance(model[1], nn.ReLU)
        assert len(model) == 2

    def test_sequential_append(self):
        model = nn.Sequential(nn.Linear(4, 4))
        model.append(nn.ReLU())
        assert len(model) == 2

    def test_modulelist(self):
        layers = nn.ModuleList([nn.Linear(2, 2) for _ in range(3)])
        assert len(layers) == 3
        assert isinstance(layers[0], nn.Linear)
        with pytest.raises(RuntimeError):
            layers(Tensor(np.ones(2)))

    def test_modulelist_parameters_registered(self):
        class M(nn.Module):
            def __init__(self):
                super().__init__()
                self.layers = nn.ModuleList([nn.Linear(2, 2), nn.Linear(2, 2)])

            def forward(self, x):
                for layer in self.layers:
                    x = layer(x)
                return x

        assert len(list(M().parameters())) == 4


class TestOptim:
    def test_sgd_decreases_quadratic(self):
        from repro.optim import SGD
        from repro.nn.module import Parameter

        p = Parameter(np.array([5.0], dtype=np.float32))
        opt = SGD([p], lr=0.1, momentum=0.0)
        for _ in range(50):
            opt.zero_grad()
            p.grad = 2 * p.data  # d/dp p^2
            opt.step()
        assert abs(p.data[0]) < 0.1

    def test_adam_decreases_quadratic(self):
        from repro.optim import Adam
        from repro.nn.module import Parameter

        p = Parameter(np.array([5.0], dtype=np.float32))
        opt = Adam([p], lr=0.3)
        for _ in range(100):
            opt.zero_grad()
            p.grad = 2 * p.data
            opt.step()
        assert abs(p.data[0]) < 0.2

    def test_sgd_skips_params_without_grad(self):
        from repro.optim import SGD
        from repro.nn.module import Parameter

        p = Parameter(np.ones(3, dtype=np.float32))
        SGD([p], lr=1.0).step()
        assert np.allclose(p.data, 1.0)
