"""Tests for the Module base class (traversal, replacement, state dicts, hooks)."""

import numpy as np
import pytest

import repro.nn as nn
from repro.autograd import Tensor
from repro.nn.module import Module, Parameter


def small_model():
    return nn.Sequential(
        nn.Linear(4, 8, rng=np.random.default_rng(0)),
        nn.ReLU(),
        nn.Linear(8, 2, rng=np.random.default_rng(1)),
    )


class TestTraversal:
    def test_named_modules(self):
        model = small_model()
        names = [name for name, _ in model.named_modules()]
        assert "" in names and "0" in names and "2" in names

    def test_named_parameters(self):
        model = small_model()
        names = dict(model.named_parameters())
        assert "0.weight" in names and "2.bias" in names

    def test_num_parameters(self):
        model = small_model()
        assert model.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_size_mb(self):
        model = small_model()
        assert model.size_mb() == pytest.approx(model.num_parameters() * 4 / 1024**2)

    def test_named_buffers(self):
        bn = nn.BatchNorm2d(3)
        assert {"running_mean", "running_var"} <= {name for name, _ in bn.named_buffers()}


class TestSubmoduleAccess:
    def test_get_submodule(self):
        model = small_model()
        assert isinstance(model.get_submodule("0"), nn.Linear)

    def test_get_submodule_empty_returns_self(self):
        model = small_model()
        assert model.get_submodule("") is model

    def test_get_submodule_missing(self):
        with pytest.raises(KeyError):
            small_model().get_submodule("7")

    def test_set_submodule_replaces(self):
        model = small_model()
        model.set_submodule("1", nn.Identity())
        assert isinstance(model.get_submodule("1"), nn.Identity)
        out = model(Tensor(np.ones((2, 4), dtype=np.float32)))
        assert out.shape == (2, 2)

    def test_set_submodule_root_rejected(self):
        with pytest.raises(ValueError):
            small_model().set_submodule("", nn.Identity())

    def test_set_submodule_nested(self):
        class Wrapper(Module):
            def __init__(self):
                super().__init__()
                self.inner = small_model()

            def forward(self, x):
                return self.inner(x)

        model = Wrapper()
        model.set_submodule("inner.1", nn.Identity())
        assert isinstance(model.inner.get_submodule("1"), nn.Identity)


class TestStateDict:
    def test_roundtrip(self):
        model = small_model()
        state = model.state_dict()
        other = small_model()
        # perturb then restore
        for p in other.parameters():
            p.data += 1.0
        other.load_state_dict(state)
        for (_, a), (_, b) in zip(model.named_parameters(), other.named_parameters()):
            assert np.allclose(a.data, b.data)

    def test_state_dict_copies(self):
        model = small_model()
        state = model.state_dict()
        state["0.weight"][...] = 0
        assert not np.allclose(model.get_submodule("0").weight.data, 0)

    def test_buffers_in_state_dict(self):
        bn = nn.BatchNorm2d(4)
        bn.running_mean[...] = 7.0
        state = bn.state_dict()
        assert np.allclose(state["running_mean"], 7.0)
        bn2 = nn.BatchNorm2d(4)
        bn2.load_state_dict(state)
        assert np.allclose(bn2.running_mean, 7.0)

    def test_shape_mismatch_raises(self):
        model = small_model()
        state = model.state_dict()
        state["0.weight"] = np.zeros((1, 1), dtype=np.float32)
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_unexpected_key_strict(self):
        model = small_model()
        state = model.state_dict()
        state["nonexistent"] = np.zeros(1)
        with pytest.raises(KeyError):
            model.load_state_dict(state, strict=True)
        model.load_state_dict(state, strict=False)


class TestModes:
    def test_train_eval_propagates(self):
        model = small_model()
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad(self):
        model = small_model()
        out = model(Tensor(np.ones((2, 4), dtype=np.float32)))
        out.sum().backward()
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_apply(self):
        visited = []
        small_model().apply(lambda m: visited.append(type(m).__name__))
        assert "Linear" in visited and "Sequential" in visited


class TestHooks:
    def test_forward_hook_called(self):
        model = small_model()
        captured = []
        handle = model.get_submodule("0").register_forward_hook(
            lambda module, inputs, output: captured.append(output.data.copy())
        )
        model(Tensor(np.ones((2, 4), dtype=np.float32)))
        assert len(captured) == 1 and captured[0].shape == (2, 8)
        handle.remove()
        model(Tensor(np.ones((2, 4), dtype=np.float32)))
        assert len(captured) == 1

    def test_parameter_registration(self):
        class M(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.ones(3))

            def forward(self, x):
                return x * self.w

        m = M()
        assert "w" in dict(m.named_parameters())
