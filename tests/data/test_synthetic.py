"""Tests for the synthetic datasets, data loader and augmentation transforms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    ArrayDataset,
    DataLoader,
    InferenceTransform,
    TrainingTransform,
    get_transform,
    make_classification_images,
    make_language_modeling,
    make_segmentation,
    make_sequence_regression,
    make_tabular_ctr,
    make_token_classification,
)


class TestArrayDatasetAndLoader:
    def test_len_and_getitem(self):
        ds = ArrayDataset(np.arange(10).reshape(10, 1), np.arange(10))
        assert len(ds) == 10
        x, y = ds[3]
        assert x[0] == 3 and y == 3

    def test_subset(self):
        ds = ArrayDataset(np.arange(20).reshape(20, 1), np.arange(20))
        sub = ds.subset(5, rng=0)
        assert len(sub) == 5

    def test_subset_larger_than_dataset(self):
        ds = ArrayDataset(np.arange(4).reshape(4, 1), np.arange(4))
        assert len(ds.subset(100, rng=0)) == 4

    def test_loader_batches_cover_dataset(self):
        ds = ArrayDataset(np.arange(10).reshape(10, 1), np.arange(10))
        loader = DataLoader(ds, batch_size=3)
        seen = np.concatenate([y for _, y in loader])
        assert len(loader) == 4
        assert sorted(seen.tolist()) == list(range(10))

    def test_loader_shuffle_deterministic_with_seed(self):
        ds = ArrayDataset(np.arange(16).reshape(16, 1), np.arange(16))
        order1 = np.concatenate([y for _, y in DataLoader(ds, 4, shuffle=True, rng=7)])
        order2 = np.concatenate([y for _, y in DataLoader(ds, 4, shuffle=True, rng=7)])
        assert np.array_equal(order1, order2)

    def test_loader_applies_transform(self):
        ds = ArrayDataset(np.ones((8, 3, 4, 4), dtype=np.float32), np.zeros(8))
        loader = DataLoader(ds, 4, transform=lambda x, rng: x * 2)
        batch, _ = next(iter(loader))
        assert np.allclose(batch, 2.0)


class TestGenerators:
    def test_image_classification_shapes(self):
        ds = make_classification_images(n_samples=64, image_size=8, channels=3, n_classes=4, rng=0)
        assert ds.inputs.shape == (64, 3, 8, 8)
        assert ds.targets.shape == (64,)
        assert set(np.unique(ds.targets)) <= set(range(4))

    def test_image_classification_deterministic(self):
        a = make_classification_images(n_samples=16, rng=3)
        b = make_classification_images(n_samples=16, rng=3)
        assert np.array_equal(a.inputs, b.inputs)

    def test_noise_controls_difficulty(self):
        clean = make_classification_images(n_samples=64, noise=0.1, rng=0)
        noisy = make_classification_images(n_samples=64, noise=3.0, rng=0)
        assert noisy.inputs.std() > clean.inputs.std()

    def test_token_classification_vocab_bounds(self):
        ds = make_token_classification(n_samples=32, seq_len=12, vocab_size=30, rng=1)
        assert ds.inputs.min() >= 0 and ds.inputs.max() < 30
        assert ds.inputs.dtype == np.int64

    def test_language_modeling_targets_are_shifted_inputs(self):
        ds = make_language_modeling(n_samples=8, seq_len=16, vocab_size=20, rng=2)
        assert ds.inputs.shape == (8, 16)
        assert np.array_equal(ds.inputs[:, 1:], ds.targets[:, :-1])

    def test_language_modeling_transitions_follow_grammar(self):
        ds = make_language_modeling(n_samples=32, seq_len=24, vocab_size=16, rng=4)
        probs = ds.extras["transition_probs"][0]
        observed = probs[ds.inputs[:, :-1].reshape(-1), ds.inputs[:, 1:].reshape(-1)]
        assert np.all(observed > 0)  # only legal transitions are generated

    def test_tabular_ctr_packing(self):
        ds = make_tabular_ctr(n_samples=64, n_dense=5, n_sparse=3, vocab_size=11, rng=5)
        assert ds.inputs.shape == (64, 8)
        sparse_part = ds.inputs[:, 5:]
        assert sparse_part.min() >= 0 and sparse_part.max() < 11
        assert set(np.unique(ds.targets)) <= {0.0, 1.0}

    def test_segmentation_masks_binary(self):
        ds = make_segmentation(n_samples=8, image_size=16, rng=6)
        assert ds.targets.shape == (8, 16, 16)
        assert set(np.unique(ds.targets)) <= {0, 1}

    def test_sequence_regression_shapes(self):
        ds = make_sequence_regression(n_samples=16, seq_len=10, n_features=6, n_classes=3, rng=7)
        assert ds.inputs.shape == (16, 10, 6)
        assert set(np.unique(ds.targets)) <= set(range(3))

    @given(st.integers(2, 6), st.integers(8, 20))
    @settings(max_examples=10, deadline=None)
    def test_token_classification_all_classes_possible(self, n_classes, seq_len):
        ds = make_token_classification(
            n_samples=64, seq_len=seq_len, n_classes=n_classes, rng=n_classes
        )
        assert ds.targets.max() < n_classes


class TestAugmentation:
    def test_training_transform_preserves_shape(self):
        images = np.random.default_rng(0).standard_normal((4, 3, 8, 8)).astype(np.float32)
        out = TrainingTransform()(images, np.random.default_rng(1))
        assert out.shape == images.shape
        assert out.dtype == np.float32

    def test_training_transform_changes_images(self):
        images = np.random.default_rng(0).standard_normal((4, 3, 8, 8)).astype(np.float32)
        out = TrainingTransform()(images, np.random.default_rng(1))
        assert not np.allclose(out, images)

    def test_training_transform_does_not_mutate_input(self):
        images = np.ones((2, 1, 4, 4), dtype=np.float32)
        before = images.copy()
        TrainingTransform()(images, np.random.default_rng(0))
        assert np.array_equal(images, before)

    def test_inference_transform_is_identity(self):
        images = np.random.default_rng(0).standard_normal((2, 3, 4, 4)).astype(np.float32)
        assert np.array_equal(InferenceTransform()(images, np.random.default_rng(0)), images)

    def test_get_transform(self):
        assert isinstance(get_transform("training"), TrainingTransform)
        assert isinstance(get_transform("inference"), InferenceTransform)
        with pytest.raises(ValueError):
            get_transform("nope")
