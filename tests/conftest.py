"""Shared pytest fixtures.

Zoo models are trained on first use and cached (in memory and on disk), so the
fixtures here are session-scoped: the first test that needs e.g. the BERT-style
bundle pays the ~3s training cost and every other test reuses it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.registry import build_task


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def bert_bundle():
    """A small trained NLP task bundle (with injected activation outliers)."""
    return build_task("distilbert-mrpc")


@pytest.fixture(scope="session")
def cnn_bundle():
    """A small trained CV task bundle with BatchNorm."""
    return build_task("resnet18-imagenet")


@pytest.fixture(scope="session")
def lm_bundle():
    """A trained causal-LM task bundle."""
    return build_task("dialogpt-wikitext")
