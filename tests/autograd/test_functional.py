"""Tests for the NN functional primitives (forward semantics + gradients)."""

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F, gradcheck


def t(shape, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.standard_normal(shape) * scale, requires_grad=True)


class TestLinearAndMatmul:
    def test_linear_matches_numpy(self):
        x, w, b = t((4, 3), 1), t((5, 3), 2), t((5,), 3)
        out = F.linear(x, w, b)
        assert np.allclose(out.data, x.data @ w.data.T + b.data, atol=1e-5)

    def test_linear_gradcheck(self):
        gradcheck(lambda x, w, b: F.linear(x, w, b), [t((3, 4), 1), t((2, 4), 2), t((2,), 3)])

    def test_linear_no_bias(self):
        out = F.linear(t((2, 3)), t((4, 3)))
        assert out.shape == (2, 4)

    def test_linear_3d_input(self):
        out = F.linear(t((2, 5, 3)), t((4, 3)), t((4,)))
        assert out.shape == (2, 5, 4)

    def test_matmul_gradcheck(self):
        gradcheck(lambda a, b: F.matmul(a, b), [t((2, 3, 4), 1), t((2, 4, 2), 2)])


class TestConv2d:
    def test_output_shape(self):
        out = F.conv2d(t((2, 3, 8, 8)), t((5, 3, 3, 3), 2, 0.2), stride=1, padding=1)
        assert out.shape == (2, 5, 8, 8)

    def test_stride_and_padding_shapes(self):
        out = F.conv2d(t((1, 3, 9, 9)), t((4, 3, 3, 3), 2, 0.2), stride=2, padding=1)
        assert out.shape == (1, 4, 5, 5)

    def test_identity_kernel(self):
        x = t((1, 1, 5, 5))
        w = Tensor(np.zeros((1, 1, 3, 3), dtype=np.float32), requires_grad=True)
        w.data[0, 0, 1, 1] = 1.0
        out = F.conv2d(x, w, padding=1)
        assert np.allclose(out.data, x.data, atol=1e-6)

    def test_matches_naive_convolution(self):
        rng = np.random.default_rng(5)
        x = rng.standard_normal((1, 2, 6, 6)).astype(np.float32)
        w = rng.standard_normal((3, 2, 3, 3)).astype(np.float32)
        out = F.conv2d(Tensor(x), Tensor(w), padding=0).data
        # naive direct computation
        expected = np.zeros((1, 3, 4, 4), dtype=np.float32)
        for co in range(3):
            for i in range(4):
                for j in range(4):
                    expected[0, co, i, j] = np.sum(x[0, :, i : i + 3, j : j + 3] * w[co])
        assert np.allclose(out, expected, atol=1e-4)

    def test_gradcheck(self):
        gradcheck(
            lambda x, w, b: F.conv2d(x, w, b, stride=1, padding=1),
            [t((1, 2, 5, 5), 1), t((3, 2, 3, 3), 2, 0.3), t((3,), 3)],
        )

    def test_grouped_conv_shapes(self):
        out = F.conv2d(t((2, 4, 6, 6)), t((4, 1, 3, 3), 2, 0.3), padding=1, groups=4)
        assert out.shape == (2, 4, 6, 6)

    def test_grouped_conv_gradcheck(self):
        gradcheck(
            lambda x, w: F.conv2d(x, w, padding=1, groups=2),
            [t((1, 4, 4, 4), 1), t((4, 2, 3, 3), 2, 0.3)],
        )

    def test_depthwise_equals_per_channel_conv(self):
        x = t((1, 3, 6, 6), 7)
        w = t((3, 1, 3, 3), 8, 0.3)
        grouped = F.conv2d(x, w, padding=1, groups=3).data
        for c in range(3):
            single = F.conv2d(
                Tensor(x.data[:, c : c + 1]), Tensor(w.data[c : c + 1]), padding=1
            ).data
            assert np.allclose(grouped[:, c : c + 1], single, atol=1e-5)

    def test_incompatible_groups_raise(self):
        with pytest.raises(ValueError):
            F.conv2d(t((1, 3, 4, 4)), t((4, 3, 3, 3)), groups=2)


class TestPooling:
    def test_max_pool_values(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        out = F.max_pool2d(x, 2)
        assert np.allclose(out.data.reshape(-1), [5, 7, 13, 15])

    def test_max_pool_gradcheck(self):
        gradcheck(lambda x: F.max_pool2d(x, 2), [t((1, 2, 4, 4))])

    def test_avg_pool_values(self):
        x = Tensor(np.ones((1, 1, 4, 4), dtype=np.float32))
        assert np.allclose(F.avg_pool2d(x, 2).data, 1.0)

    def test_avg_pool_gradcheck(self):
        gradcheck(lambda x: F.avg_pool2d(x, 2), [t((1, 2, 4, 4))])

    def test_global_pool(self):
        out = F.adaptive_avg_pool2d(t((2, 3, 5, 5)))
        assert out.shape == (2, 3, 1, 1)

    def test_adaptive_pool_rejects_other_sizes(self):
        with pytest.raises(NotImplementedError):
            F.adaptive_avg_pool2d(t((1, 1, 4, 4)), output_size=2)

    def test_upsample_nearest(self):
        x = Tensor(np.arange(4, dtype=np.float32).reshape(1, 1, 2, 2))
        up = F.upsample_nearest2d(x, 2)
        assert up.shape == (1, 1, 4, 4)
        assert np.allclose(up.data[0, 0, :2, :2], 0.0)

    def test_upsample_gradcheck(self):
        gradcheck(lambda x: F.upsample_nearest2d(x, 2), [t((1, 2, 3, 3))])


class TestEmbedding:
    def test_lookup(self):
        w = t((10, 4))
        idx = np.array([[1, 2], [3, 4]])
        out = F.embedding(w, idx)
        assert out.shape == (2, 2, 4)
        assert np.allclose(out.data[0, 0], w.data[1])

    def test_gradient_accumulates_for_repeated_indices(self):
        w = t((5, 3))
        idx = np.array([[1, 1, 1]])
        F.embedding(w, idx).sum().backward()
        assert np.allclose(w.grad[1], 3.0)
        assert np.allclose(w.grad[0], 0.0)

    def test_embedding_bag_mean(self):
        w = t((6, 4))
        idx = np.array([[0, 1], [2, 3]])
        out = F.embedding_bag(w, idx, mode="mean")
        assert out.shape == (2, 4)
        assert np.allclose(out.data[0], (w.data[0] + w.data[1]) / 2, atol=1e-6)

    def test_embedding_bag_sum(self):
        w = t((6, 4))
        out = F.embedding_bag(w, np.array([[0, 1]]), mode="sum")
        assert np.allclose(out.data[0], w.data[0] + w.data[1], atol=1e-6)

    def test_embedding_bag_invalid_mode(self):
        with pytest.raises(ValueError):
            F.embedding_bag(t((6, 4)), np.array([[0]]), mode="max")


class TestNormalisation:
    def test_layer_norm_statistics(self):
        x = t((4, 8), 1, 3.0)
        w = Tensor(np.ones(8), requires_grad=True)
        b = Tensor(np.zeros(8), requires_grad=True)
        out = F.layer_norm(x, w, b).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-4)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_layer_norm_gradcheck(self):
        gradcheck(
            lambda x, w, b: F.layer_norm(x, w, b),
            [t((3, 6), 1), t((6,), 2), t((6,), 3)],
        )

    def test_batch_norm_training_normalises(self):
        x = t((8, 4), 1, 5.0)
        w = Tensor(np.ones(4))
        b = Tensor(np.zeros(4))
        rm, rv = np.zeros(4, dtype=np.float32), np.ones(4, dtype=np.float32)
        out = F.batch_norm(x, w, b, rm, rv, training=True).data
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-3)

    def test_batch_norm_updates_running_stats(self):
        x = Tensor(np.full((16, 3), 2.0, dtype=np.float32))
        w, b = Tensor(np.ones(3)), Tensor(np.zeros(3))
        rm, rv = np.zeros(3, dtype=np.float32), np.ones(3, dtype=np.float32)
        F.batch_norm(x, w, b, rm, rv, training=True, momentum=1.0)
        assert np.allclose(rm, 2.0, atol=1e-5)

    def test_batch_norm_eval_uses_running_stats(self):
        x = Tensor(np.full((4, 2), 3.0, dtype=np.float32))
        w, b = Tensor(np.ones(2)), Tensor(np.zeros(2))
        rm = np.full(2, 3.0, dtype=np.float32)
        rv = np.full(2, 1.0, dtype=np.float32)
        out = F.batch_norm(x, w, b, rm, rv, training=False).data
        assert np.allclose(out, 0.0, atol=1e-4)

    def test_batch_norm_4d(self):
        x = t((2, 3, 4, 4))
        w, b = Tensor(np.ones(3)), Tensor(np.zeros(3))
        rm, rv = np.zeros(3, dtype=np.float32), np.ones(3, dtype=np.float32)
        out = F.batch_norm(x, w, b, rm, rv, training=True)
        assert out.shape == (2, 3, 4, 4)

    def test_batch_norm_rejects_3d(self):
        with pytest.raises(ValueError):
            F.batch_norm(
                t((2, 3, 4)),
                Tensor(np.ones(3)),
                Tensor(np.zeros(3)),
                np.zeros(3, dtype=np.float32),
                np.ones(3, dtype=np.float32),
                training=True,
            )


class TestSoftmaxAndLosses:
    def test_softmax_sums_to_one(self):
        out = F.softmax(t((4, 7), 1, 3.0)).data
        assert np.allclose(out.sum(axis=-1), 1.0, atol=1e-5)

    def test_softmax_stable_for_large_logits(self):
        out = F.softmax(Tensor(np.array([[1000.0, 1000.0]]))).data
        assert np.allclose(out, 0.5)

    def test_log_softmax_matches_log_of_softmax(self):
        x = t((3, 5), 2)
        assert np.allclose(F.log_softmax(x).data, np.log(F.softmax(x).data + 1e-12), atol=1e-4)

    def test_cross_entropy_value(self):
        logits = Tensor(np.log(np.array([[0.7, 0.2, 0.1]], dtype=np.float32)))
        loss = F.cross_entropy(logits, np.array([0]))
        assert float(loss.data) == pytest.approx(-np.log(0.7), abs=1e-4)

    def test_cross_entropy_gradcheck(self):
        targets = np.array([0, 2, 1])
        gradcheck(lambda x: F.cross_entropy(x, targets), [t((3, 4), 1)])

    def test_cross_entropy_3d(self):
        logits = t((2, 3, 5), 1)
        targets = np.random.default_rng(0).integers(0, 5, size=(2, 3))
        loss = F.cross_entropy(logits, targets)
        assert loss.data.shape == ()

    def test_mse_loss(self):
        a = Tensor(np.array([1.0, 2.0]))
        b = np.array([0.0, 0.0])
        assert float(F.mse_loss(a, b).data) == pytest.approx(2.5)

    def test_bce_with_logits_matches_reference(self):
        logits = Tensor(np.array([0.5, -1.0, 2.0], dtype=np.float32))
        targets = np.array([1.0, 0.0, 1.0], dtype=np.float32)
        loss = float(F.binary_cross_entropy_with_logits(logits, targets).data)
        p = 1 / (1 + np.exp(-logits.data))
        expected = -np.mean(targets * np.log(p) + (1 - targets) * np.log(1 - p))
        assert loss == pytest.approx(float(expected), abs=1e-5)

    def test_bce_gradcheck(self):
        targets = np.array([1.0, 0.0, 1.0, 0.0], dtype=np.float32)
        gradcheck(lambda x: F.binary_cross_entropy_with_logits(x, targets), [t((4,), 1)])


class TestDropout:
    def test_identity_in_eval(self):
        x = t((10, 10))
        out = F.dropout(x, 0.5, training=False)
        assert out is x

    def test_scaling_in_train(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200), dtype=np.float32))
        out = F.dropout(x, 0.5, training=True, rng=rng).data
        assert out.mean() == pytest.approx(1.0, abs=0.05)
        assert set(np.unique(out)).issubset({0.0, 2.0})
