"""Tests for the Tensor autograd engine (analytic gradients vs numerical differentiation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor, gradcheck, no_grad, is_grad_enabled


def t(shape, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.standard_normal(shape) * scale, requires_grad=True)


class TestBasics:
    def test_shape_dtype(self):
        x = Tensor(np.ones((2, 3)))
        assert x.shape == (2, 3)
        assert x.dtype == np.float32
        assert x.size == 6

    def test_detach_cuts_tape(self):
        x = t((3,))
        y = (x * 2).detach()
        assert not y.requires_grad

    def test_no_grad_context(self):
        x = t((3,))
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            y = x * 2
        assert y._backward is None

    def test_backward_requires_grad(self):
        x = Tensor(np.ones(3), requires_grad=False)
        with pytest.raises(RuntimeError):
            x.backward()

    def test_grad_accumulates_across_backward_calls(self):
        x = t((3,))
        (x * 2).sum().backward()
        (x * 2).sum().backward()
        assert np.allclose(x.grad, 4.0)

    def test_zero_grad(self):
        x = t((3,))
        (x * 2).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_item(self):
        assert Tensor(np.array([3.5])).item() == pytest.approx(3.5)


class TestArithmeticGradients:
    def test_add(self):
        gradcheck(lambda a, b: a + b, [t((3, 4), 1), t((3, 4), 2)])

    def test_add_broadcast(self):
        gradcheck(lambda a, b: a + b, [t((3, 4), 1), t((4,), 2)])

    def test_sub(self):
        gradcheck(lambda a, b: a - b, [t((2, 3), 1), t((2, 3), 2)])

    def test_mul(self):
        gradcheck(lambda a, b: a * b, [t((3, 3), 1), t((3, 3), 2)])

    def test_mul_broadcast_scalar_tensor(self):
        gradcheck(lambda a, b: a * b, [t((2, 3), 1), t((1,), 2)])

    def test_div(self):
        a, b = t((3,), 1), t((3,), 2)
        b.data = np.abs(b.data) + 1.0
        gradcheck(lambda a, b: a / b, [a, b])

    def test_pow(self):
        a = t((4,), 3)
        a.data = np.abs(a.data) + 0.5
        gradcheck(lambda a: a**3, [a])

    def test_neg(self):
        gradcheck(lambda a: -a, [t((3,))])

    def test_rsub_rmul(self):
        x = t((3,))
        y = 2.0 - x
        z = 3.0 * x
        assert np.allclose(y.data, 2.0 - x.data)
        assert np.allclose(z.data, 3.0 * x.data)


class TestMatmulGradients:
    def test_2d_matmul(self):
        gradcheck(lambda a, b: a @ b, [t((3, 4), 1), t((4, 5), 2)])

    def test_batched_matmul(self):
        gradcheck(lambda a, b: a @ b, [t((2, 3, 4), 1), t((2, 4, 5), 2)])

    def test_broadcast_batched_matmul(self):
        gradcheck(lambda a, b: a @ b, [t((2, 3, 4), 1), t((4, 5), 2)])


class TestReductionGradients:
    def test_sum_all(self):
        gradcheck(lambda a: a.sum(), [t((3, 4))])

    def test_sum_axis(self):
        gradcheck(lambda a: a.sum(axis=1), [t((3, 4))])

    def test_sum_axis_keepdims(self):
        gradcheck(lambda a: a.sum(axis=0, keepdims=True), [t((3, 4))])

    def test_mean(self):
        gradcheck(lambda a: a.mean(axis=-1), [t((2, 5))])

    def test_var(self):
        gradcheck(lambda a: a.var(axis=-1), [t((2, 5))])

    def test_max(self):
        a = t((3, 4))
        gradcheck(lambda a: a.max(axis=1), [a])


class TestShapeGradients:
    def test_reshape(self):
        gradcheck(lambda a: a.reshape(6, 2), [t((3, 4))])

    def test_flatten(self):
        gradcheck(lambda a: a.flatten(1), [t((2, 3, 4))])

    def test_transpose(self):
        gradcheck(lambda a: a.transpose(1, 0, 2), [t((2, 3, 4))])

    def test_swapaxes(self):
        gradcheck(lambda a: a.swapaxes(0, 1), [t((2, 3))])

    def test_getitem(self):
        gradcheck(lambda a: a[1:, :2], [t((3, 4))])

    def test_concatenate(self):
        gradcheck(lambda a, b: Tensor.concatenate([a, b], axis=1), [t((2, 3), 1), t((2, 2), 2)])

    def test_pad2d(self):
        gradcheck(lambda a: a.pad2d((1, 2)), [t((1, 2, 3, 3))])


class TestNonlinearityGradients:
    def test_exp(self):
        gradcheck(lambda a: a.exp(), [t((3, 3), scale=0.5)])

    def test_log(self):
        a = t((4,))
        a.data = np.abs(a.data) + 0.5
        gradcheck(lambda a: a.log(), [a])

    def test_sqrt(self):
        a = t((4,))
        a.data = np.abs(a.data) + 0.5
        gradcheck(lambda a: a.sqrt(), [a])

    def test_relu(self):
        gradcheck(lambda a: a.relu(), [t((4, 4))])

    def test_sigmoid(self):
        gradcheck(lambda a: a.sigmoid(), [t((3, 3))])

    def test_tanh(self):
        gradcheck(lambda a: a.tanh(), [t((3, 3))])

    def test_gelu(self):
        gradcheck(lambda a: a.gelu(), [t((3, 3))])

    def test_silu(self):
        gradcheck(lambda a: a.silu(), [t((3, 3))])

    def test_abs(self):
        a = t((5,))
        a.data = a.data + np.sign(a.data) * 0.5  # keep away from the kink
        gradcheck(lambda a: a.abs(), [a])

    def test_clip(self):
        a = t((5,), scale=2.0)
        gradcheck(lambda a: a.clip(-1.0, 1.0), [a])


class TestGraphBehaviour:
    def test_diamond_graph_accumulates(self):
        x = t((3,))
        y = x * 2
        z = (y + x).sum()
        z.backward()
        assert np.allclose(x.grad, 3.0)

    def test_chain_through_multiple_ops(self):
        gradcheck(lambda a: ((a * 2 + 1).tanh() ** 2).mean(), [t((3, 3))])

    def test_grad_not_tracked_for_constant_operands(self):
        x = t((3,))
        c = Tensor(np.ones(3))
        (x * c).sum().backward()
        assert c.grad is None

    @given(st.integers(2, 6), st.integers(2, 6))
    @settings(max_examples=20, deadline=None)
    def test_linear_chain_random_shapes(self, n, m):
        a = t((n, m), seed=n * 10 + m)
        gradcheck(lambda a: (a * 3 - 1).relu().sum(axis=0), [a])
