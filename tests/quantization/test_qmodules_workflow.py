"""Tests for the quantized wrappers and the prepare/calibrate/convert workflow."""

import numpy as np
import pytest

import repro.nn as nn
from repro.autograd import Tensor, no_grad
from repro.models.cnn import TinyResNet
from repro.quantization import (
    Approach,
    QuantFormat,
    QuantizedModule,
    calibrate_model,
    convert_model,
    extended_recipe,
    int8_recipe,
    prepare_model,
    quantize_model,
    standard_recipe,
)
from repro.quantization.qconfig import Granularity, OperatorQuantConfig, TensorQuantConfig
from repro.quantization.qmodules import TensorQuantizer, wrap_module
from repro.quantization.workflow import clone_module, find_first_last_operators, storage_report
from repro.fp8 import E4M3


def _op_config(fmt=QuantFormat.E4M3, approach=Approach.STATIC):
    return OperatorQuantConfig(
        activation=TensorQuantConfig(fmt=fmt, approach=approach),
        weight=TensorQuantConfig(fmt=fmt, granularity=Granularity.PER_CHANNEL),
    )


class TestTensorQuantizer:
    def test_static_quantizer_uses_calibrated_scale(self):
        q = TensorQuantizer(TensorQuantConfig(fmt=QuantFormat.E4M3))
        q.observe(np.array([0.0, 2.0]))
        q.freeze()
        out = q.quantize(np.array([4.0]))  # beyond the calibrated range -> clipped to 2.0
        assert out[0] == pytest.approx(2.0, rel=0.1)

    def test_dynamic_quantizer_adapts_per_batch(self):
        q = TensorQuantizer(TensorQuantConfig(fmt=QuantFormat.E4M3, approach=Approach.DYNAMIC))
        q.freeze()
        out = q.quantize(np.array([4.0, 0.1]))
        assert out[0] == pytest.approx(4.0, rel=0.01)

    def test_direct_quantizer_scale_is_one(self):
        q = TensorQuantizer(TensorQuantConfig(fmt=QuantFormat.E5M2, approach=Approach.DIRECT))
        q.freeze()
        out = q.quantize(np.array([3.0]))
        assert out[0] == pytest.approx(3.0, rel=0.25)

    def test_static_requires_calibration(self):
        q = TensorQuantizer(TensorQuantConfig(fmt=QuantFormat.E4M3))
        with pytest.raises(RuntimeError):
            q.freeze()

    def test_disabled_quantizer_is_identity(self):
        q = TensorQuantizer(TensorQuantConfig(fmt=QuantFormat.FP32))
        q.freeze()
        x = np.array([0.12345678], dtype=np.float32)
        assert np.array_equal(q.quantize(x), x)

    def test_int8_static_path(self):
        q = TensorQuantizer(TensorQuantConfig(fmt=QuantFormat.INT8))
        q.observe(np.array([-1.0, 1.0]))
        q.freeze()
        out = q.quantize(np.array([0.5]))
        assert abs(out[0] - 0.5) <= (1.0 / 127) / 2 + 1e-6

    def test_per_channel_weight_quantization(self):
        q = TensorQuantizer(
            TensorQuantConfig(fmt=QuantFormat.E4M3, granularity=Granularity.PER_CHANNEL),
            channel_axis=0,
        )
        w = np.stack([np.full(8, 0.01), np.full(8, 10.0)]).astype(np.float32)
        out = q.quantize(w)
        # each channel keeps good relative accuracy despite very different ranges
        assert np.allclose(out[0], 0.01, rtol=0.07)
        assert np.allclose(out[1], 10.0, rtol=0.07)

    def test_describe(self):
        q = TensorQuantizer(TensorQuantConfig(fmt=QuantFormat.E3M4))
        assert q.describe()["format"] == "E3M4"


class TestQuantizedWrappers:
    def test_wrap_linear_quantizes_weight_on_convert(self):
        linear = nn.Linear(8, 4, rng=np.random.default_rng(0))
        original = linear.weight.data.copy()
        wrapped = wrap_module("Linear", linear, _op_config())
        wrapped.start_observing()
        wrapped(Tensor(np.random.default_rng(1).standard_normal((4, 8)).astype(np.float32)))
        wrapped.convert()
        # convert packs the weight into 8-bit storage and binds the dequantized
        # float32 compute view over the (pristine) original
        assert wrapped.weight_q is not None
        assert wrapped.weight_q.codes.dtype == np.uint8
        assert not np.array_equal(linear.weight.data, original)
        grid = E4M3.positive_values
        scale = E4M3.max_value / np.abs(original).max(axis=1, keepdims=True)
        scaled = np.abs(linear.weight.data * scale)
        # every quantized weight lies on the E4M3 grid in the scaled domain
        assert np.allclose(
            np.min(np.abs(scaled[..., None] - grid[None, None]), axis=-1), 0, atol=1e-3
        )

    def test_restore_undoes_weight_quantization(self):
        linear = nn.Linear(8, 4, rng=np.random.default_rng(0))
        original = linear.weight.data.copy()
        wrapped = wrap_module("Linear", linear, _op_config())
        wrapped.start_observing()
        wrapped(Tensor(np.ones((2, 8), dtype=np.float32)))
        wrapped.convert()
        wrapped(Tensor(np.ones((2, 8), dtype=np.float32)))  # binds the quantized view
        wrapped.restore()
        assert np.array_equal(linear.weight.data, original)
        assert wrapped.weight_q is None

    def test_convert_twice_keeps_original_weight(self):
        # Regression: a second convert() used to snapshot the already-quantized
        # weight as "_original_weight", turning restore() into a no-op.
        linear = nn.Linear(8, 4, rng=np.random.default_rng(0))
        original = linear.weight.data.copy()
        wrapped = wrap_module("Linear", linear, _op_config())
        wrapped.start_observing()
        wrapped(Tensor(np.ones((2, 8), dtype=np.float32)))
        wrapped.convert()
        wrapped(Tensor(np.ones((2, 8), dtype=np.float32)))
        wrapped.convert()  # idempotent no-op
        wrapped.restore()
        assert np.array_equal(linear.weight.data, original)

    def test_convert_after_restore_requantizes(self):
        linear = nn.Linear(8, 4, rng=np.random.default_rng(0))
        wrapped = wrap_module("Linear", linear, _op_config())
        wrapped.start_observing()
        wrapped(Tensor(np.ones((2, 8), dtype=np.float32)))
        wrapped.convert()
        first = wrapped.quantized_weight().copy()
        wrapped.restore()
        wrapped.convert()
        assert wrapped.quantizing and wrapped.weight_q is not None
        assert np.array_equal(wrapped.quantized_weight(), first)

    def test_drop_weight_cache_rematerializes(self):
        linear = nn.Linear(8, 4, rng=np.random.default_rng(0))
        original = linear.weight.data.copy()
        wrapped = wrap_module("Linear", linear, _op_config())
        wrapped.start_observing()
        x = Tensor(np.ones((2, 8), dtype=np.float32))
        wrapped(x)
        wrapped.convert()
        out_before = wrapped(x).data
        wrapped.drop_weight_cache()
        # with the cache dropped, the original float values are bound again ...
        assert np.array_equal(linear.weight.data, original)
        # ... and the next quantized forward re-materialises the same view
        out_after = wrapped(x).data
        assert np.array_equal(out_before, out_after)

    def test_load_state_dict_after_convert_does_not_corrupt_original(self):
        # Regression for the by-reference snapshot: writing into the bound
        # weight (load_state_dict does an in-place copy) must not leak into
        # the original that restore() returns.
        model = nn.Sequential(nn.Linear(8, 4, rng=np.random.default_rng(0)))
        model.eval()
        original = model.get_submodule("0").weight.data.copy()
        result = quantize_model(
            model, standard_recipe("E4M3", approach=Approach.DYNAMIC), inplace=True
        )
        state = {name: np.zeros_like(p.data) for name, p in model.named_parameters()}
        model.load_state_dict(state, strict=False)
        wrapper = result.model.get_submodule("0")
        wrapper.restore()
        assert np.array_equal(wrapper.inner.weight.data, original)

    def test_state_dict_carries_packed_weight_right_after_convert(self):
        model = nn.Sequential(nn.Linear(8, 4, rng=np.random.default_rng(0)))
        model.eval()
        original = model.get_submodule("0").weight.data.copy()
        result = quantize_model(
            model, standard_recipe("E4M3", approach=Approach.DYNAMIC), inplace=True
        )
        state = result.model.state_dict()
        wrapper = result.model.get_submodule("0")
        # no forward has run, yet the snapshot already holds the quantized
        # weight — as packed codes/scales in the wrapper's extra state (the
        # storage of record since PR 3), not as a derived dense float copy
        assert "0.inner.weight" not in state
        packed = state["0._extra_state"]["weight_q"]
        assert np.array_equal(packed["codes"], wrapper.weight_q.codes)
        assert np.array_equal(packed["scale"], np.asarray(wrapper.weight_q.scale))
        assert not np.array_equal(wrapper.quantized_weight(), original)

    def test_packed_weight_storage_is_quarter_of_fp32(self):
        linear = nn.Linear(64, 64, rng=np.random.default_rng(0))
        wrapped = wrap_module("Linear", linear, _op_config(approach=Approach.DYNAMIC))
        wrapped.convert()
        stats = wrapped.weight_storage_nbytes()
        assert stats["fp32_bytes"] == 64 * 64 * 4
        assert stats["packed_bytes"] <= 0.3 * stats["fp32_bytes"]

    def test_packed_weight_matches_inplace_qdq(self):
        # the packed storage must dequantize to exactly the values the old
        # in-place Q/DQ wrote into inner.weight.data
        linear = nn.Linear(16, 8, rng=np.random.default_rng(5))
        wrapped = wrap_module("Linear", linear, _op_config(approach=Approach.DYNAMIC))
        wrapped.convert()
        expected = wrapped.weight_quantizer.quantize(linear.weight.data)
        assert np.array_equal(wrapped.quantized_weight(), expected)

    def test_embedding_wrapper_has_no_input_quantizer(self):
        emb = nn.Embedding(10, 4)
        wrapped = wrap_module("Embedding", emb, _op_config())
        assert wrapped.input_quantizers == []
        wrapped.convert()
        out = wrapped(np.array([[1, 2]]))
        assert out.shape == (1, 2, 4)

    def test_two_input_wrapper(self):
        add = nn.Add()
        wrapped = wrap_module("Add", add, _op_config(approach=Approach.DYNAMIC))
        wrapped.convert()
        out = wrapped(Tensor(np.ones(4)), Tensor(np.full(4, 2.0)))
        assert np.allclose(out.data, 3.0, rtol=0.1)

    def test_unknown_operator_type(self):
        with pytest.raises(KeyError):
            wrap_module("Conv3d", nn.Identity(), _op_config())

    def test_wrapper_repr_mentions_formats(self):
        wrapped = wrap_module("Linear", nn.Linear(4, 4), _op_config())
        assert "E4M3" in wrapped.extra_repr()


class TestWorkflow:
    def _calib(self, n=32, dim=8, seed=0):
        return [
            np.random.default_rng(seed + i).standard_normal((4, dim)).astype(np.float32)
            for i in range(n // 4)
        ]

    def test_prepare_wraps_standard_operators(self):
        model = nn.Sequential(nn.Linear(8, 16), nn.ReLU(), nn.Linear(16, 2))
        result = prepare_model(model, standard_recipe("E4M3"))
        assert len(result.quantized_modules) == 2
        assert all(
            isinstance(model.get_submodule(n), QuantizedModule) for n in result.quantized_modules
        )

    def test_prepare_respects_fallback_list(self):
        model = nn.Sequential(nn.Linear(8, 16), nn.ReLU(), nn.Linear(16, 2))
        result = prepare_model(model, standard_recipe("E4M3", fallback_modules=("2",)))
        assert "2" in result.skipped_modules

    def test_prepare_is_idempotent_against_double_wrapping(self):
        model = nn.Sequential(nn.Linear(8, 8))
        prepare_model(model, standard_recipe("E4M3"))
        second = prepare_model(model, standard_recipe("E4M3"))
        assert second.quantized_modules == []

    def test_first_last_detection(self):
        model = TinyResNet(num_classes=4, widths=(8, 16), rng=np.random.default_rng(0))
        first, last = find_first_last_operators(model)
        assert first.startswith("stem")
        assert last == "fc"

    def test_first_last_skipped_for_convolutional_models(self):
        model = TinyResNet(num_classes=4, widths=(8, 16), rng=np.random.default_rng(0))
        result = prepare_model(model, standard_recipe("E4M3"), is_convolutional=True)
        assert any(name.startswith("stem") for name in result.skipped_modules)
        assert "fc" in result.skipped_modules

    def test_static_without_calibration_raises(self):
        model = nn.Sequential(nn.Linear(8, 2))
        with pytest.raises(ValueError):
            quantize_model(model, standard_recipe("E4M3"), calibration_data=None)

    def test_dynamic_needs_no_calibration(self):
        model = nn.Sequential(nn.Linear(8, 2))
        model.eval()
        result = quantize_model(model, standard_recipe("E4M3", approach=Approach.DYNAMIC))
        out = result.model(Tensor(np.ones((1, 8), dtype=np.float32)))
        assert out.shape == (1, 2)

    def test_e5m2_direct_needs_no_calibration(self):
        model = nn.Sequential(nn.Linear(8, 2))
        model.eval()
        result = quantize_model(model, standard_recipe("E5M2"))
        assert result.num_quantized == 1

    def test_quantize_model_leaves_original_untouched(self):
        model = nn.Sequential(nn.Linear(8, 2))
        model.eval()
        original = model.get_submodule("0").weight.data.copy()
        quantize_model(model, standard_recipe("E4M3"), calibration_data=self._calib())
        assert np.array_equal(model.get_submodule("0").weight.data, original)
        assert not isinstance(model.get_submodule("0"), QuantizedModule)

    def test_quantize_model_inplace(self):
        model = nn.Sequential(nn.Linear(8, 2))
        model.eval()
        result = quantize_model(
            model, standard_recipe("E4M3"), calibration_data=self._calib(), inplace=True
        )
        assert result.model is model
        assert isinstance(model.get_submodule("0"), QuantizedModule)

    def test_calibrate_and_convert_pipeline(self):
        model = nn.Sequential(nn.Linear(8, 8), nn.ReLU(), nn.Linear(8, 2))
        model.eval()
        prepare_model(model, standard_recipe("E4M3"))
        used = calibrate_model(model, self._calib(), prepare_inputs=lambda x: Tensor(x))
        assert used == 8
        converted = convert_model(model)
        assert len(converted) == 2
        out = model(Tensor(np.ones((2, 8), dtype=np.float32)))
        assert out.shape == (2, 2)

    def test_quantized_outputs_close_to_fp32(self):
        model = nn.Sequential(nn.Linear(8, 16), nn.ReLU(), nn.Linear(16, 4))
        model.eval()
        x = Tensor(np.random.default_rng(3).standard_normal((16, 8)).astype(np.float32))
        with no_grad():
            ref = model(x).data
        result = quantize_model(model, standard_recipe("E3M4"), calibration_data=self._calib())
        with no_grad():
            q = result.model(x).data
        rel = np.abs(q - ref).max() / (np.abs(ref).max() + 1e-9)
        assert rel < 0.15

    def test_extended_recipe_quantizes_more_operators(self, bert_bundle):
        std = quantize_model(
            bert_bundle.model,
            standard_recipe("E4M3"),
            calibration_data=bert_bundle.calib_data,
            prepare_inputs=bert_bundle.prepare_inputs,
        )
        ext = quantize_model(
            bert_bundle.model,
            extended_recipe("E4M3", batchnorm_calibration=False),
            calibration_data=bert_bundle.calib_data,
            prepare_inputs=bert_bundle.prepare_inputs,
        )
        assert ext.num_quantized > std.num_quantized

    def test_int8_recipe_runs(self, bert_bundle):
        result = quantize_model(
            bert_bundle.model,
            int8_recipe(approach=Approach.DYNAMIC),
            calibration_data=bert_bundle.calib_data,
            prepare_inputs=bert_bundle.prepare_inputs,
        )
        metric = bert_bundle.evaluate(result.model)
        assert metric > 0.3  # still a functioning model

    def test_result_summary_strings(self):
        model = nn.Sequential(nn.Linear(4, 2))
        model.eval()
        result = quantize_model(model, standard_recipe("E4M3", approach=Approach.DYNAMIC))
        assert "quantized operators" in result.summary()

    def test_quantize_model_reports_packed_storage(self):
        model = nn.Sequential(nn.Linear(64, 64), nn.ReLU(), nn.Linear(64, 64))
        model.eval()
        result = quantize_model(model, standard_recipe("E4M3", approach=Approach.DYNAMIC))
        assert result.weight_bytes_fp32 == 2 * 64 * 64 * 4
        assert 0 < result.weight_bytes_packed <= 0.3 * result.weight_bytes_fp32
        assert result.weight_compression_ratio == pytest.approx(
            result.weight_bytes_packed / result.weight_bytes_fp32
        )
        assert "packed weight storage" in result.summary()
        rows = storage_report(result.model)
        assert len(rows) == 2
        assert all(r["format"] == "E4M3" for r in rows)

    def test_int8_recipe_packs_int8_codes(self):
        model = nn.Sequential(nn.Linear(64, 64))
        model.eval()
        result = quantize_model(model, int8_recipe(approach=Approach.DYNAMIC))
        wrapper = result.model.get_submodule("0")
        assert wrapper.weight_q.codes.dtype == np.int8
        assert result.weight_bytes_packed <= 0.3 * result.weight_bytes_fp32

    def test_clone_module_is_independent(self):
        model = nn.Sequential(nn.Linear(4, 2))
        clone = clone_module(model)
        clone.get_submodule("0").weight.data[...] = 0
        assert not np.allclose(model.get_submodule("0").weight.data, 0)
