"""Tests for SmoothQuant, BatchNorm calibration, mixed formats, metrics and auto-tuning."""

import numpy as np
import pytest

import repro.nn as nn
from repro.autograd import no_grad
from repro.data.synthetic import make_classification_images
from repro.models.outliers import inject_nlp_outliers
from repro.models.transformer import BertStyleClassifier
from repro.quantization import (
    AutoTuner,
    QuantFormat,
    apply_smoothquant,
    assign_mixed_formats,
    calibrate_batchnorm,
    classify_tensor,
    extended_recipe,
    meets_accuracy_target,
    mse,
    quantize_model,
    relative_accuracy_loss,
    sqnr,
    standard_recipe,
)
from repro.quantization.mixed import format_for_tensor, kurtosis
from repro.quantization.smoothquant import collect_channel_absmax, find_smoothable_pairs
from repro.quantization.tuning import default_search_space


class TestMetrics:
    def test_mse_zero_for_identical(self):
        x = np.random.default_rng(0).standard_normal(100)
        assert mse(x, x) == 0.0

    def test_sqnr_increases_with_fidelity(self):
        x = np.random.default_rng(0).standard_normal(1000)
        assert sqnr(x, x + 0.001) > sqnr(x, x + 0.1)

    def test_relative_loss_sign(self):
        assert relative_accuracy_loss(0.8, 0.72) == pytest.approx(0.1)
        assert relative_accuracy_loss(0.8, 0.84) == pytest.approx(-0.05)

    def test_pass_criterion_is_one_percent_relative(self):
        assert meets_accuracy_target(0.80, 0.7921)
        assert not meets_accuracy_target(0.80, 0.7919)


class TestSmoothQuant:
    def _model_with_outliers(self, alpha=32.0):
        model = BertStyleClassifier(
            embed_dim=16, num_heads=2, num_layers=2, rng=np.random.default_rng(0)
        )
        model.eval()
        inject_nlp_outliers(model, alpha=alpha, num_channels=2, rng=0)
        return model

    def _calib(self):
        rng = np.random.default_rng(1)
        return [rng.integers(0, 64, size=(8, 12)) for _ in range(4)]

    def test_finds_ln_fc1_pairs(self):
        model = self._model_with_outliers()
        pairs = find_smoothable_pairs(model)
        assert len(pairs) == 2
        assert all("ln2" in ln_name and "fc1" in fc_name for ln_name, _, fc_name, _ in pairs)

    def test_collect_channel_absmax(self):
        model = self._model_with_outliers()
        pairs = find_smoothable_pairs(model)
        stats = collect_channel_absmax(
            model, [ln for _, ln, _, _ in pairs], self._calib(), prepare_inputs=lambda x: x
        )
        assert all(v.shape == (16,) for v in stats.values())

    def test_smoothquant_preserves_function(self):
        model = self._model_with_outliers()
        tokens = np.random.default_rng(2).integers(0, 64, size=(4, 12))
        with no_grad():
            before = model(tokens).data.copy()
        smoothed = apply_smoothquant(model, self._calib(), prepare_inputs=lambda x: x, alpha=0.5)
        with no_grad():
            after = model(tokens).data
        assert smoothed == 2
        assert np.allclose(before, after, atol=1e-3)

    def test_smoothquant_reduces_activation_outliers(self):
        model = self._model_with_outliers(alpha=48.0)
        pairs = find_smoothable_pairs(model)
        ln_modules = [ln for _, ln, _, _ in pairs]
        before = collect_channel_absmax(
            model, ln_modules, self._calib(), prepare_inputs=lambda x: x
        )
        apply_smoothquant(model, self._calib(), prepare_inputs=lambda x: x, alpha=0.5)
        after = collect_channel_absmax(model, ln_modules, self._calib(), prepare_inputs=lambda x: x)
        ratio_before = max(v.max() / np.median(v) for v in before.values())
        ratio_after = max(v.max() / np.median(v) for v in after.values())
        assert ratio_after < ratio_before

    def test_smoothquant_without_calibration_is_noop(self):
        model = self._model_with_outliers()
        assert apply_smoothquant(model, None) == 0

    def test_smoothquant_on_model_without_pairs(self):
        model = nn.Sequential(nn.Linear(4, 4))
        assert apply_smoothquant(model, [np.ones((2, 4), dtype=np.float32)]) == 0


class TestBatchNormCalibration:
    def _cnn(self):
        model = nn.Sequential(
            nn.Conv2d(3, 8, 3, padding=1, rng=np.random.default_rng(0)),
            nn.BatchNorm2d(8),
            nn.ReLU(),
            nn.AdaptiveAvgPool2d(1),
            nn.Flatten(),
            nn.Linear(8, 4, rng=np.random.default_rng(1)),
        )
        model.eval()
        return model

    def test_recalibration_updates_running_stats(self):
        model = self._cnn()
        data = make_classification_images(n_samples=64, rng=0)
        bn = model.get_submodule("1")
        before = bn.running_mean.copy()
        n = calibrate_batchnorm(model, data, num_samples=64, transform="inference")
        assert n == 1
        assert not np.allclose(bn.running_mean, before)

    def test_model_without_batchnorm_returns_zero(self):
        model = nn.Sequential(nn.Linear(4, 2))
        assert calibrate_batchnorm(model, np.zeros((8, 4), dtype=np.float32)) == 0

    def test_calibrating_flag_restored(self):
        model = self._cnn()
        data = make_classification_images(n_samples=32, rng=0)
        calibrate_batchnorm(model, data, num_samples=32)
        assert not model.get_submodule("1").calibrating

    def test_transform_choice_changes_statistics(self):
        data = make_classification_images(n_samples=128, rng=0)
        model_a, model_b = self._cnn(), self._cnn()
        calibrate_batchnorm(model_a, data, num_samples=128, transform="training", seed=3)
        calibrate_batchnorm(model_b, data, num_samples=128, transform="inference", seed=3)
        assert not np.allclose(
            model_a.get_submodule("1").running_var, model_b.get_submodule("1").running_var
        )

    def test_recipe_level_bn_calibration(self, cnn_bundle):
        recipe = extended_recipe("E3M4", batchnorm_calibration=True)
        recipe.bn_calibration_samples = 256
        result = quantize_model(
            cnn_bundle.model,
            recipe,
            calibration_data=cnn_bundle.calib_data,
            prepare_inputs=cnn_bundle.prepare_inputs,
            is_convolutional=True,
        )
        assert result.batchnorm_calibrated
        metric = cnn_bundle.evaluate(result.model)
        assert metric > 0.5


class TestMixedFormats:
    def test_classify_outlier_tensor_as_range_bound(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 1, 4096)
        x[:4] = 200.0
        assert classify_tensor(x) == "range-bound"

    def test_classify_gaussian_as_precision_bound(self):
        x = np.random.default_rng(1).normal(0, 1, 4096)
        assert classify_tensor(x) == "precision-bound"

    def test_format_for_tensor(self):
        outliers = np.zeros(1000)
        outliers[0] = 100.0
        outliers[1:] = np.random.default_rng(0).normal(0, 0.5, 999)
        assert format_for_tensor(outliers) is QuantFormat.E4M3
        assert format_for_tensor(np.random.default_rng(1).normal(0, 1, 1000)) is QuantFormat.E3M4

    def test_kurtosis_of_constant_is_zero(self):
        assert kurtosis(np.ones(100)) == 0.0

    def test_assign_mixed_formats_static_rule(self):
        recipe = assign_mixed_formats(standard_recipe("E4M3"))
        assert recipe.activation_fmt is QuantFormat.E4M3
        assert recipe.weight_fmt is QuantFormat.E3M4

    def test_assign_mixed_formats_with_stats(self):
        stats = {
            "fc_outlier": np.concatenate(
                [np.full(4, 300.0), np.random.default_rng(0).normal(0, 1, 996)]
            ),
            "fc_smooth": np.random.default_rng(1).normal(0, 1, 1000),
        }
        recipe = assign_mixed_formats(standard_recipe("E4M3"), activation_stats=stats)
        assert recipe.module_overrides["fc_outlier"].activation.fmt is QuantFormat.E4M3
        assert recipe.module_overrides["fc_smooth"].activation.fmt is QuantFormat.E3M4


class TestAutoTuner:
    def test_search_space_shapes(self):
        nlp = default_search_space("nlp")
        cv = default_search_space("cv")
        assert any(r.smoothquant for r in nlp)
        assert any(r.batchnorm_calibration for r in cv)

    def test_tuner_stops_at_first_pass(self, bert_bundle):
        tuner = AutoTuner(
            evaluate_fn=lambda model: bert_bundle.evaluate(model),
            fp32_metric=bert_bundle.fp32_metric,
        )
        result = tuner.tune(
            bert_bundle.model,
            default_search_space("nlp")[:2],
            calibration_data=bert_bundle.calib_data,
            prepare_inputs=bert_bundle.prepare_inputs,
        )
        assert result.trials
        assert result.best is not None
        assert "trials" in result.summary()

    def test_tuner_fallback_refinement(self, bert_bundle):
        # an impossible target forces the fallback loop to run
        tuner = AutoTuner(
            evaluate_fn=lambda model: bert_bundle.evaluate(model),
            fp32_metric=bert_bundle.fp32_metric,
            relative_loss_target=-1.0,
        )
        candidates = [name for name, _ in bert_bundle.model.named_modules() if name.endswith("fc1")]
        result = tuner.tune(
            bert_bundle.model,
            [standard_recipe("E5M2")],
            fallback_candidates=candidates,
            max_fallback_rounds=1,
            calibration_data=bert_bundle.calib_data,
            prepare_inputs=bert_bundle.prepare_inputs,
        )
        assert len(result.trials) == 2
        assert result.trials[1].recipe.fallback_modules

    def test_invalid_objective(self):
        with pytest.raises(ValueError):
            AutoTuner(evaluate_fn=lambda m: 0.0, fp32_metric=1.0, objective="speed")
