"""Tests for quantization configs, recipes and range observers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp8 import E4M3
from repro.quantization.observers import (
    KLObserver,
    MinMaxObserver,
    MovingAverageMinMaxObserver,
    MSEObserver,
    PercentileObserver,
    build_observer,
)
from repro.quantization.qconfig import (
    Approach,
    Granularity,
    OperatorQuantConfig,
    QuantFormat,
    STANDARD_OPERATORS,
    TensorQuantConfig,
    extended_recipe,
    int8_recipe,
    standard_recipe,
)


class TestQuantFormat:
    def test_fp8_flags(self):
        assert QuantFormat.E4M3.is_fp8 and not QuantFormat.E4M3.is_int8
        assert QuantFormat.INT8.is_int8 and not QuantFormat.INT8.is_fp8

    def test_fp8_format_resolution(self):
        assert QuantFormat.E4M3.fp8_format() is E4M3
        with pytest.raises(ValueError):
            QuantFormat.INT8.fp8_format()

    def test_int8_spec_resolution(self):
        assert QuantFormat.INT8.int8_spec().symmetric
        assert not QuantFormat.INT8_ASYM.int8_spec().symmetric
        with pytest.raises(ValueError):
            QuantFormat.E3M4.int8_spec()

    def test_fp32_disables_quantization(self):
        assert not TensorQuantConfig(fmt=QuantFormat.FP32).enabled


class TestRecipes:
    def test_standard_recipe_operators(self):
        recipe = standard_recipe("E4M3")
        assert recipe.operators == STANDARD_OPERATORS
        assert recipe.weight_granularity is Granularity.PER_CHANNEL
        assert recipe.activation_granularity is Granularity.PER_TENSOR

    def test_extended_recipe_operators(self):
        recipe = extended_recipe("E4M3")
        assert set(STANDARD_OPERATORS) < set(recipe.operators)
        assert "LayerNorm" in recipe.operators and "BatchMatMul" in recipe.operators

    def test_extended_mixed_formats(self):
        recipe = extended_recipe(mixed_formats=True)
        assert recipe.activation_fmt is QuantFormat.E4M3
        assert recipe.weight_fmt is QuantFormat.E3M4

    def test_int8_recipe(self):
        recipe = int8_recipe(approach=Approach.DYNAMIC)
        assert recipe.activation_fmt is QuantFormat.INT8
        assert recipe.approach is Approach.DYNAMIC

    def test_e5m2_uses_direct_quantization(self):
        recipe = standard_recipe("E5M2")
        assert recipe.tensor_configs().activation.approach is Approach.DIRECT

    def test_e4m3_static_stays_static(self):
        assert standard_recipe("E4M3").tensor_configs().activation.approach is Approach.STATIC

    def test_config_for_fallback_module(self):
        recipe = standard_recipe("E4M3", fallback_modules=("classifier",))
        assert recipe.config_for("Linear", "classifier") is None
        assert recipe.config_for("Linear", "other") is not None

    def test_config_for_unlisted_operator(self):
        recipe = standard_recipe("E4M3")
        assert recipe.config_for("LayerNorm", "ln") is None

    def test_module_override_takes_priority(self):
        override = OperatorQuantConfig(
            activation=TensorQuantConfig(fmt=QuantFormat.E3M4),
            weight=TensorQuantConfig(fmt=QuantFormat.E3M4),
        )
        recipe = standard_recipe("E4M3", module_overrides={"fc1": override})
        assert recipe.config_for("Linear", "fc1").activation.fmt is QuantFormat.E3M4

    def test_describe(self):
        desc = extended_recipe("E3M4", name="x").describe()
        assert desc["name"] == "x" and desc["activation_fmt"] == "E3M4"

    def test_string_format_lookup(self):
        assert standard_recipe("e3m4").activation_fmt is QuantFormat.E3M4


def _cfg(observer="minmax", granularity=Granularity.PER_TENSOR):
    return TensorQuantConfig(fmt=QuantFormat.E4M3, granularity=granularity, observer=observer)


class TestObservers:
    def test_minmax_tracks_running_extremes(self):
        obs = MinMaxObserver(_cfg())
        obs.observe(np.array([1.0, -2.0]))
        obs.observe(np.array([5.0, 0.5]))
        lo, hi = obs.calibrated_range()
        assert float(lo) == -2.0 and float(hi) == 5.0
        assert float(obs.calibrated_absmax()) == 5.0

    def test_minmax_requires_data(self):
        with pytest.raises(RuntimeError):
            MinMaxObserver(_cfg()).calibrated_range()

    def test_minmax_per_channel(self):
        obs = MinMaxObserver(_cfg(granularity=Granularity.PER_CHANNEL), channel_axis=0)
        obs.observe(np.array([[1.0, -3.0], [10.0, 0.1]]))
        assert obs.calibrated_absmax().shape == (2,)
        assert np.allclose(obs.calibrated_absmax(), [3.0, 10.0])

    def test_moving_average_smooths(self):
        obs = MovingAverageMinMaxObserver(_cfg("moving_average"), momentum=0.5)
        obs.observe(np.array([0.0, 2.0]))
        obs.observe(np.array([0.0, 10.0]))
        _, hi = obs.calibrated_range()
        assert 2.0 < float(hi) < 10.0

    def test_percentile_ignores_extreme_outliers(self):
        rng = np.random.default_rng(0)
        data = rng.normal(0, 1, 8000)
        data[0] = 1e4
        obs = PercentileObserver(_cfg("percentile"), percentile=99.0)
        obs.observe(data)
        _, hi = obs.calibrated_range()
        assert float(hi) < 100.0

    def test_mse_observer_clips_outliers(self):
        rng = np.random.default_rng(1)
        data = np.concatenate([rng.normal(0, 0.5, 4000), [50.0]])
        obs = MSEObserver(_cfg("mse"))
        obs.observe(data)
        _, hi = obs.calibrated_range()
        assert float(hi) <= 50.0

    def test_kl_observer_returns_positive_threshold(self):
        rng = np.random.default_rng(2)
        obs = KLObserver(_cfg("kl"))
        obs.observe(rng.normal(0, 1, 5000))
        lo, hi = obs.calibrated_range()
        assert float(hi) > 0 and float(lo) == -float(hi)

    def test_build_observer_dispatch(self):
        assert isinstance(build_observer(_cfg("minmax")), MinMaxObserver)
        assert isinstance(build_observer(_cfg("kl")), KLObserver)
        with pytest.raises(KeyError):
            build_observer(_cfg("magic"))

    @given(st.lists(st.floats(-1e3, 1e3, allow_nan=False), min_size=1, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_minmax_absmax_bounds_all_observed_data(self, values):
        obs = MinMaxObserver(_cfg())
        data = np.asarray(values)
        obs.observe(data)
        assert float(obs.calibrated_absmax()) >= np.abs(data).max() - 1e-9
