"""Deploy (restore-free) mode, serving modes and the cache-drop bugfix."""

import warnings

import numpy as np
import pytest

import repro.nn as nn
from repro.autograd.tensor import Tensor
from repro.quantization import (
    Approach,
    QuantizedModule,
    deploy_model,
    int8_recipe,
    quantize_model,
    resident_report,
    set_serving_mode,
    standard_recipe,
)


def _mlp(seed=0):
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Linear(64, 128, rng=rng),
        nn.ReLU(),
        nn.Linear(128, 32, rng=rng),
    )


def _probe(shape=(6, 64), seed=1):
    return Tensor(np.random.default_rng(seed).normal(0, 1, shape).astype(np.float32))


def _wrappers(model):
    return [m for _, m in model.named_modules() if isinstance(m, QuantizedModule)]


def _quantized(recipe=None, model=None):
    recipe = recipe or standard_recipe("E4M3", approach=Approach.DYNAMIC)
    return quantize_model(model or _mlp(), recipe)


class TestDeployMode:
    def test_drop_originals_frees_and_restore_raises(self):
        result = _quantized()
        wrapper = _wrappers(result.model)[0]
        assert wrapper._original_weight is not None
        deploy_model(result.model)
        assert wrapper.deployed
        assert wrapper._original_weight is None
        with pytest.raises(RuntimeError, match="restore-free"):
            wrapper.restore()

    def test_quantize_model_deploy_flag(self):
        result = quantize_model(
            _mlp(), standard_recipe("E4M3", approach=Approach.DYNAMIC), deploy=True
        )
        assert all(w.deployed for w in _wrappers(result.model))
        assert resident_report(result.model)["ratio"] <= 0.35

    def test_deployed_forward_still_works(self):
        baseline = _quantized()
        expected = baseline.model(_probe()).data
        deployed = quantize_model(
            _mlp(), standard_recipe("E4M3", approach=Approach.DYNAMIC), deploy=True
        )
        assert np.array_equal(deployed.model(_probe()).data, expected)

    def test_drop_weight_cache_respects_restore_free_mode(self):
        """The PR-3 bugfix: after deployment the dropped cache must actually be freed.

        Before the fix ``drop_weight_cache()`` only rebound ``inner.weight``
        when an original was still held, so in restore-free mode the cache
        stayed reachable (and resident) through the bound parameter.
        """
        result = quantize_model(
            _mlp(), standard_recipe("E4M3", approach=Approach.DYNAMIC), deploy=True
        )
        wrapper = _wrappers(result.model)[0]
        # forward re-materialises the cache in cached serving mode
        result.model(_probe())
        assert wrapper._weight_cache is not None
        cache = wrapper._weight_cache
        wrapper.drop_weight_cache()
        assert wrapper._weight_cache is None
        # the bound weight must no longer alias the dropped cache...
        assert wrapper.inner.weight.data is not cache
        # ...and must be the 4-byte broadcast placeholder, not a dense array
        bound = wrapper.inner.weight.data
        assert bound.shape == wrapper.weight_q.shape
        assert not bound.flags.writeable
        assert bound.base is not None and bound.base.nbytes == 4

    def test_deployed_at_rest_resident_ratio(self):
        result = quantize_model(_mlp(), int8_recipe(approach=Approach.DYNAMIC), deploy=True)
        report = resident_report(result.model)
        assert report["ratio"] <= 0.35
        # a cached forward materialises caches; dropping them gets back down
        result.model(_probe())
        for wrapper in _wrappers(result.model):
            wrapper.drop_weight_cache()
        assert resident_report(result.model)["ratio"] <= 0.35


class TestServingModes:
    def test_invalid_mode_rejected(self):
        wrapper = _wrappers(_quantized().model)[0]
        with pytest.raises(ValueError, match="unknown serving mode"):
            wrapper.set_serving_mode("warp-speed")

    @pytest.mark.parametrize(
        "recipe",
        [
            standard_recipe("E4M3", approach=Approach.DYNAMIC),
            standard_recipe("E5M2", approach=Approach.DYNAMIC),
            int8_recipe(approach=Approach.DYNAMIC),
            int8_recipe(asymmetric_activations=True, approach=Approach.DYNAMIC),
        ],
        ids=lambda r: r.name,
    )
    def test_streaming_linear_matches_cached(self, recipe):
        result = _quantized(recipe)
        probe = _probe()
        cached_out = result.model(probe).data
        set_serving_mode(result.model, "streaming")
        streaming_out = result.model(probe).data
        assert np.allclose(streaming_out, cached_out, rtol=1e-5, atol=1e-6)

    def test_streaming_blocked_matmul_covers_uneven_blocks(self):
        """Output channels not divisible by the block size must still be exact."""
        rng = np.random.default_rng(3)
        model = nn.Sequential(nn.Linear(16, 70, rng=rng))
        result = quantize_model(model, standard_recipe("E4M3", approach=Approach.DYNAMIC))
        probe = _probe(shape=(5, 16))
        cached_out = result.model(probe).data
        wrapper = _wrappers(result.model)[0]
        wrapper.streaming_block_channels = 32  # 70 = 32 + 32 + 6
        wrapper.set_serving_mode("streaming")
        assert np.allclose(result.model(probe).data, cached_out, rtol=1e-5, atol=1e-6)

    def test_streaming_leaves_no_cache(self):
        result = quantize_model(
            _mlp(),
            standard_recipe("E4M3", approach=Approach.DYNAMIC),
            deploy=True,
            serving_mode="streaming",
        )
        result.model(_probe())
        for wrapper in _wrappers(result.model):
            assert wrapper._weight_cache is None
        assert resident_report(result.model)["ratio"] <= 0.35

    def test_convert_in_streaming_mode_never_binds_cache(self):
        """Setting streaming before convert() must not leave a resident cache."""
        from repro.quantization import convert_model, prepare_model

        model = _mlp()
        model.eval()
        prepare_model(model, standard_recipe("E4M3", approach=Approach.DYNAMIC))
        set_serving_mode(model, "streaming")
        convert_model(model)
        probe_out = model(_probe()).data
        for wrapper in _wrappers(model):
            assert wrapper._weight_cache is None
        # and the outputs agree with a cached-mode conversion of the same model
        cached = quantize_model(_mlp(), standard_recipe("E4M3", approach=Approach.DYNAMIC))
        assert np.allclose(probe_out, cached.model(_probe()).data, rtol=1e-5, atol=1e-6)

    def test_streaming_embedding_gather_decode(self):
        rng = np.random.default_rng(4)
        model = nn.Sequential(nn.Embedding(50, 12, rng=rng))
        recipe = standard_recipe("E4M3", approach=Approach.DYNAMIC)
        result = quantize_model(model, recipe)
        indices = np.array([[3, 7, 49], [0, 1, 3]])
        cached_out = result.model(indices).data
        set_serving_mode(result.model, "streaming")
        streaming_out = result.model(indices).data
        # gather-decode is element-wise: bit-identical, not just close
        assert np.array_equal(streaming_out, cached_out)
        assert _wrappers(result.model)[0]._weight_cache is None

    def test_streaming_conv_fallback_matches_cached(self):
        rng = np.random.default_rng(5)
        model = nn.Sequential(nn.Conv2d(3, 8, 3, rng=rng))
        recipe = standard_recipe("E4M3", approach=Approach.DYNAMIC)
        recipe.skip_first_operator = False
        recipe.skip_last_operator = False
        result = quantize_model(model, recipe)
        probe = Tensor(rng.normal(0, 1, (2, 3, 8, 8)).astype(np.float32))
        cached_out = result.model(probe).data
        set_serving_mode(result.model, "streaming")
        streaming_out = result.model(probe).data
        assert np.array_equal(streaming_out, cached_out)
        assert _wrappers(result.model)[0]._weight_cache is None


class TestExtraStateRoundTrip:
    def test_state_dict_roundtrip_preserves_packed_storage(self):
        recipe = standard_recipe("E4M3")
        rng = np.random.default_rng(5)
        calib = [rng.normal(0, 1, (8, 64)).astype(np.float32) for _ in range(3)]
        result = quantize_model(_mlp(), recipe, calibration_data=calib)
        probe = _probe()
        expected = result.model(probe).data
        state = result.model.state_dict()

        target = quantize_model(_mlp(seed=9), recipe, calibration_data=calib)
        assert not np.array_equal(target.model(probe).data, expected)
        target.model.load_state_dict(state)
        assert np.array_equal(target.model(probe).data, expected)
        src = _wrappers(result.model)[0].weight_q
        dst = _wrappers(target.model)[0].weight_q
        assert np.array_equal(src.codes, dst.codes)
        assert np.array_equal(np.asarray(src.scale), np.asarray(dst.scale))

    def test_plain_models_have_no_extra_state(self):
        model = _mlp()
        assert all(not key.endswith("._extra_state") for key in model.state_dict())

    def test_deployed_state_dict_excludes_dense_weight(self):
        result = quantize_model(
            _mlp(), standard_recipe("E4M3", approach=Approach.DYNAMIC), deploy=True
        )
        state = result.model.state_dict()
        assert "0.inner.weight" not in state
        assert "0.inner.bias" in state
        assert "0._extra_state" in state


class TestStreamingBlockConfig:
    def _linear_wrapper(self):
        rng = np.random.default_rng(11)
        model = nn.Sequential(nn.Linear(16, 70, rng=rng))
        result = quantize_model(model, standard_recipe("E4M3", approach=Approach.DYNAMIC))
        return result.model, _wrappers(result.model)[0]

    def test_set_serving_mode_block_channels_wins(self, monkeypatch):
        model, wrapper = self._linear_wrapper()
        monkeypatch.setenv("REPRO_STREAM_BLOCK", "48")
        set_serving_mode(model, "streaming", block_channels=5)
        assert wrapper.streaming_block_size() == 5

    def test_env_var_overrides_class_default(self, monkeypatch):
        _, wrapper = self._linear_wrapper()
        assert wrapper.streaming_block_size() == type(wrapper).streaming_block_channels
        monkeypatch.setenv("REPRO_STREAM_BLOCK", "12")
        assert wrapper.streaming_block_size() == 12

    def test_invalid_env_var_warns_once_and_falls_back(self, monkeypatch):
        _, wrapper = self._linear_wrapper()
        monkeypatch.setenv("REPRO_STREAM_BLOCK", "lots")
        with pytest.warns(RuntimeWarning, match="REPRO_STREAM_BLOCK"):
            block = wrapper.streaming_block_size()
        assert block == type(wrapper).streaming_block_channels
        # warned once per distinct value, not once per streaming forward
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert wrapper.streaming_block_size() == block

    def test_non_positive_env_var_warns_and_falls_back(self, monkeypatch):
        _, wrapper = self._linear_wrapper()
        monkeypatch.setenv("REPRO_STREAM_BLOCK", "-3")
        with pytest.warns(RuntimeWarning, match="positive integer"):
            assert wrapper.streaming_block_size() == type(wrapper).streaming_block_channels

    def test_invalid_env_var_does_not_break_streaming_forward(self, monkeypatch):
        model, _ = self._linear_wrapper()
        probe = _probe(shape=(5, 16))
        cached_out = model(probe).data
        monkeypatch.setenv("REPRO_STREAM_BLOCK", "banana")
        set_serving_mode(model, "streaming")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            out = model(probe).data
        assert np.allclose(out, cached_out, rtol=1e-5, atol=1e-6)

    def test_invalid_block_channels_rejected(self):
        _, wrapper = self._linear_wrapper()
        with pytest.raises(ValueError, match="block_channels"):
            wrapper.set_serving_mode("streaming", block_channels=0)

    def test_block_size_changes_streaming_outputs_not(self, monkeypatch):
        model, wrapper = self._linear_wrapper()
        probe = _probe(shape=(5, 16))
        cached_out = model(probe).data
        monkeypatch.setenv("REPRO_STREAM_BLOCK", "7")  # 70 = 7 x 10
        set_serving_mode(model, "streaming")
        assert np.allclose(model(probe).data, cached_out, rtol=1e-5, atol=1e-6)

    def test_prefetch_flag_roundtrips_through_set_serving_mode(self):
        model, wrapper = self._linear_wrapper()
        assert wrapper.streaming_prefetch is False
        set_serving_mode(model, "streaming", prefetch=True)
        assert wrapper.streaming_prefetch is True
        set_serving_mode(model, "streaming")  # None leaves it untouched
        assert wrapper.streaming_prefetch is True
        set_serving_mode(model, "streaming", prefetch=False)
        assert wrapper.streaming_prefetch is False


class TestEmbeddingStreamingDedupe:
    def _embedding(self, rows=40, dim=6):
        rng = np.random.default_rng(13)
        model = nn.Sequential(nn.Embedding(rows, dim, rng=rng))
        result = quantize_model(model, standard_recipe("E4M3", approach=Approach.DYNAMIC))
        set_serving_mode(result.model, "streaming")
        return result.model, _wrappers(result.model)[0]

    def test_duplicate_indices_decode_each_row_once(self, monkeypatch):
        from repro.fp8 import kernels

        model, wrapper = self._embedding()
        decoded_rows = []
        real = kernels.fp8_dequantize_channelwise

        def _spy(codes, fmt, scale):
            decoded_rows.append(codes.shape[0])
            return real(codes, fmt, scale)

        monkeypatch.setattr(kernels, "fp8_dequantize_channelwise", _spy)
        indices = np.array([[3, 7, 3, 3], [7, 7, 3, 0]])  # 3 unique rows
        model(indices)
        assert decoded_rows == [3]

    def test_deduped_gather_bit_identical_to_cached(self):
        model, wrapper = self._embedding()
        indices = np.array([[5, 5, 5], [2, 5, 39], [39, 39, 2]])
        streaming_out = model(indices).data
        set_serving_mode(model, "cached")
        cached_out = model(indices).data
        assert np.array_equal(streaming_out, cached_out)
        assert streaming_out.shape == (3, 3, 6)

    def test_all_identical_indices(self):
        model, wrapper = self._embedding()
        indices = np.full((4, 8), 17)
        out = model(indices).data
        set_serving_mode(model, "cached")
        assert np.array_equal(out, model(indices).data)


class TestPipelineServingMode:
    def _deep_model(self, layers=4, features=24, seed=17):
        rng = np.random.default_rng(seed)
        stack = []
        for _ in range(layers):
            stack.extend([nn.Linear(features, features, rng=rng), nn.ReLU()])
        model = nn.Sequential(*stack[:-1])
        return quantize_model(model, standard_recipe("E4M3", approach=Approach.DYNAMIC)).model

    def test_pipeline_wires_one_shared_coordinator(self):
        model = self._deep_model()
        set_serving_mode(model, "streaming", prefetch="pipeline")
        wrappers = _wrappers(model)
        assert all(w.streaming_prefetch == "pipeline" for w in wrappers)
        pipelines = {id(w._pipeline) for w in wrappers}
        assert len(pipelines) == 1
        assert wrappers[0]._pipeline is not None
        # the coordinator holds the wrappers in module definition order
        assert wrappers[0]._pipeline.order == wrappers

    def test_pipeline_outputs_match_cached(self):
        model = self._deep_model()
        probe = _probe(shape=(32, 24), seed=23)
        cached_out = model(probe).data
        set_serving_mode(model, "streaming", prefetch="pipeline")
        streamed = model(probe).data
        assert np.array_equal(streamed, cached_out)
        # repeated passes reuse the coordinator and stay identical
        assert np.array_equal(model(probe).data, cached_out)

    def test_switching_prefetch_off_clears_coordinator(self):
        model = self._deep_model()
        set_serving_mode(model, "streaming", prefetch="pipeline")
        assert all(w._pipeline is not None for w in _wrappers(model))
        set_serving_mode(model, "streaming", prefetch=True)
        assert all(w._pipeline is None for w in _wrappers(model))
        assert all(w.streaming_prefetch is True for w in _wrappers(model))

    def test_pipeline_without_wiring_falls_back_to_per_layer(self):
        model = self._deep_model()
        wrapper = _wrappers(model)[0]
        probe = _probe(shape=(32, 24), seed=23)
        cached_out = model(probe).data
        # per-module call only: no model-level coordinator gets built
        for w in _wrappers(model):
            w.set_serving_mode("streaming", prefetch="pipeline")
        assert all(w._pipeline is None for w in _wrappers(model))
        assert np.array_equal(model(probe).data, cached_out)
        assert wrapper.streaming_prefetch == "pipeline"

    def test_invalid_prefetch_value_rejected(self):
        model = self._deep_model()
        with pytest.raises(ValueError, match="prefetch"):
            set_serving_mode(model, "streaming", prefetch="psychic")
