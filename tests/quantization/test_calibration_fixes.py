"""Regression tests for calibration-path fixes.

Covers the bugs fixed alongside the kernel work:

* ``quantize_model`` gating on the recipe-level approach, which skipped
  calibration for mixed recipes whose top-level approach is dynamic but whose
  per-module overrides are static;
* ``PercentileObserver`` growing memory without bound across batches;
* percentile / MSE / KL observers silently dropping ``channel_axis``;
* ``int8_quantize`` returning float64 "integer codes".
"""

import warnings

import numpy as np
import pytest

import repro.nn as nn
from repro.fp8.int8 import (
    INT8_ASYMMETRIC,
    INT8_SYMMETRIC,
    int8_compute_qparams,
    int8_quantize,
    int8_quantize_dequantize,
)
from repro.quantization import (
    Approach,
    QuantFormat,
    quantize_model,
)
from repro.quantization.observers import (
    KLObserver,
    MSEObserver,
    PercentileObserver,
    build_observer,
)
from repro.quantization.qconfig import (
    Granularity,
    OperatorQuantConfig,
    TensorQuantConfig,
    standard_recipe,
)


def _calib(n=32, dim=8, seed=0):
    return [
        np.random.default_rng(seed + i).standard_normal((4, dim)).astype(np.float32)
        for i in range(n // 4)
    ]


def _static_override(fmt=QuantFormat.E4M3):
    return OperatorQuantConfig(
        activation=TensorQuantConfig(fmt=fmt, approach=Approach.STATIC),
        weight=TensorQuantConfig(fmt=fmt, granularity=Granularity.PER_CHANNEL),
    )


class TestMixedRecipeCalibrationGating:
    def test_dynamic_recipe_with_static_override_calibrates(self):
        """A dynamic top-level recipe with a static per-module override must calibrate."""
        model = nn.Sequential(nn.Linear(8, 16), nn.ReLU(), nn.Linear(16, 2))
        recipe = standard_recipe(
            "E4M3",
            approach=Approach.DYNAMIC,
            module_overrides={"0": _static_override()},
        )
        result = quantize_model(model, recipe, calibration_data=_calib())
        wrapper = result.model.get_submodule("0")
        quantizer = wrapper.input_quantizers[0]
        assert quantizer.config.approach is Approach.STATIC
        assert quantizer.frozen
        # the observer actually saw the calibration batches
        assert quantizer.observer.ready
        assert quantizer._absmax is not None and float(quantizer._absmax) > 0

    def test_dynamic_recipe_with_static_override_requires_data(self):
        model = nn.Sequential(nn.Linear(8, 2))
        recipe = standard_recipe(
            "E4M3",
            approach=Approach.DYNAMIC,
            module_overrides={"0": _static_override()},
        )
        with pytest.raises((ValueError, RuntimeError)):
            quantize_model(model, recipe, calibration_data=None)

    def test_pure_dynamic_recipe_still_skips_calibration(self):
        model = nn.Sequential(nn.Linear(8, 2))
        recipe = standard_recipe("E4M3", approach=Approach.DYNAMIC)
        result = quantize_model(model, recipe, calibration_data=None)
        assert result.num_quantized == 1


class TestPercentileReservoir:
    def _cfg(self, observer="percentile", granularity=Granularity.PER_TENSOR):
        return TensorQuantConfig(fmt=QuantFormat.E4M3, granularity=granularity, observer=observer)

    def test_global_sample_bound_across_batches(self):
        obs = PercentileObserver(self._cfg(), max_samples=1000)
        rng = np.random.default_rng(0)
        for _ in range(50):
            obs.observe(rng.normal(size=700))
        assert sum(s.size for s in obs._samples) <= 1000
        assert obs._data().size <= 1000

    def test_single_oversized_batch_is_capped(self):
        obs = PercentileObserver(self._cfg(), max_samples=256)
        obs.observe(np.random.default_rng(1).normal(size=10_000))
        assert obs._data().size <= 256

    def test_range_still_sensible_after_compaction(self):
        obs = PercentileObserver(self._cfg(), max_samples=2048, percentile=99.0)
        rng = np.random.default_rng(2)
        for _ in range(20):
            obs.observe(rng.normal(0.0, 1.0, 5000))
        lo, hi = obs.calibrated_range()
        # the 99th percentile of a unit gaussian is ~2.33
        assert 1.5 < float(hi) < 3.5
        assert -3.5 < float(lo) < -1.5

    def test_search_observer_bound(self):
        obs = MSEObserver(self._cfg("mse"))
        rng = np.random.default_rng(3)
        for _ in range(10):
            obs.observe(rng.normal(size=100_000))
        assert obs._data().size <= obs.reservoir_size

    def test_invalid_reservoir_size_rejected(self):
        with pytest.raises(ValueError):
            PercentileObserver(self._cfg(), max_samples=0)


class TestChannelAxisExplicitDegradation:
    @pytest.mark.parametrize("observer", ["percentile", "mse", "kl"])
    def test_per_channel_config_warns(self, observer):
        cfg = TensorQuantConfig(
            fmt=QuantFormat.E4M3,
            granularity=Granularity.PER_CHANNEL,
            observer=observer,
        )
        with pytest.warns(UserWarning, match="per-tensor"):
            build_observer(cfg, channel_axis=0)

    @pytest.mark.parametrize("cls", [PercentileObserver, MSEObserver, KLObserver])
    def test_explicit_channel_axis_warns(self, cls):
        cfg = TensorQuantConfig(fmt=QuantFormat.E4M3, observer="minmax")
        with pytest.warns(UserWarning, match="channel_axis"):
            cls(cfg, channel_axis=1)

    @pytest.mark.parametrize("observer", ["percentile", "mse", "kl"])
    def test_per_tensor_config_does_not_warn(self, observer):
        cfg = TensorQuantConfig(fmt=QuantFormat.E4M3, observer=observer)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            build_observer(cfg, channel_axis=None)

    def test_degraded_observer_still_calibrates_per_tensor(self):
        cfg = TensorQuantConfig(
            fmt=QuantFormat.E4M3,
            granularity=Granularity.PER_CHANNEL,
            observer="percentile",
        )
        with pytest.warns(UserWarning):
            obs = build_observer(cfg, channel_axis=0)
        obs.observe(np.random.default_rng(4).normal(size=(8, 16)))
        lo, hi = obs.calibrated_range()
        assert np.asarray(lo).ndim == 0 and np.asarray(hi).ndim == 0


class TestInt8CodesDtype:
    def test_int8_quantize_returns_int8(self):
        x = np.random.default_rng(5).normal(size=100) * 10
        scale, zp = int8_compute_qparams(x, INT8_SYMMETRIC)
        q = int8_quantize(x, scale, zp, INT8_SYMMETRIC)
        assert q.dtype == np.int8
        assert q.min() >= -127 and q.max() <= 127

    def test_asymmetric_codes_cover_full_range(self):
        x = np.linspace(-1.0, 3.0, 1000)
        scale, zp = int8_compute_qparams(x, INT8_ASYMMETRIC)
        q = int8_quantize(x, scale, zp, INT8_ASYMMETRIC)
        assert q.dtype == np.int8
        assert q.min() >= -128 and q.max() <= 127

    @pytest.mark.parametrize("spec", [INT8_SYMMETRIC, INT8_ASYMMETRIC])
    def test_nan_maps_to_zero_point_code(self, spec):
        x = np.array([-1.0, np.nan, 3.0])
        scale, zp = int8_compute_qparams(np.array([-1.0, 3.0]), spec)
        q = int8_quantize(x, scale, zp, spec)
        assert q.dtype == np.int8
        assert int(q[1]) == int(zp)

    def test_qdq_propagates_nan_like_fp8_path(self):
        x = np.array([np.nan, 1.0, -2.0])
        scale, zp = int8_compute_qparams(np.array([1.0, -2.0]), INT8_SYMMETRIC)
        out = int8_quantize_dequantize(x, scale=scale, zero_point=zp)
        assert np.isnan(out[0]) and not np.isnan(out[1:]).any()
        assert out.dtype == np.float32
