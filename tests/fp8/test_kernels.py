"""Equivalence and property tests for the bit-twiddling FP8 cast kernels.

The fast kernel must be bit-exact against the table-based reference oracle:
on every one of the 256 raw codes of each format (512 signed values counting
both signs of every magnitude), on random tensors in float32 and float64, and
on every special case — NaN, ±inf, ±0, subnormals and exact ties.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp8 import E2M5, E3M4, E4M3, E5M2
from repro.fp8 import kernels
from repro.fp8.kernels import (
    KERNEL_ENV_VAR,
    fp8_decode_fast,
    fp8_decode_reference,
    fp8_encode_fast,
    fp8_encode_reference,
    fp8_round_fast,
    fp8_round_reference,
    get_active_kernel,
    set_kernel,
    use_kernel,
)
from repro.fp8.quantize import fp8_round, quantize_dequantize

FORMATS = [E5M2, E4M3, E3M4, E2M5]
ALL_CODES = np.arange(256, dtype=np.int64)


def assert_bitequal(a, b):
    """Float32 arrays must match bit-for-bit (distinguishes ±0, exact NaN bits)."""
    a, b = np.asarray(a), np.asarray(b)
    assert a.dtype == np.float32 and b.dtype == np.float32
    np.testing.assert_array_equal(a.view(np.int32), b.view(np.int32))


def special_values(fmt):
    """NaN / inf / zeros / saturation boundary / subnormal boundary cases."""
    return np.array(
        [
            np.nan,
            -np.nan,
            np.inf,
            -np.inf,
            0.0,
            -0.0,
            fmt.max_value,
            -fmt.max_value,
            np.nextafter(fmt.max_value, np.inf),
            np.nextafter(fmt.max_value, 0.0),
            fmt.max_value * 2,
            fmt.min_normal,
            -fmt.min_normal,
            fmt.min_subnormal,
            fmt.min_subnormal / 2,      # exact tie with zero
            -fmt.min_subnormal / 2,
            fmt.min_subnormal * 1.5,    # exact tie between first two subnormals
            np.nextafter(fmt.min_subnormal / 2, 0.0),
            np.nextafter(fmt.min_subnormal / 2, 1.0),
            1e-300,
            -1e-300,
            1e300,
        ]
    )


def tie_values(fmt):
    """Exact midpoints of every adjacent pair of representable magnitudes."""
    pos = fmt.positive_values
    mids = (pos[:-1] + pos[1:]) / 2.0
    return np.concatenate([mids, -mids])


def random_values(fmt, seed=0, n=5000):
    rng = np.random.default_rng(seed)
    return np.concatenate(
        [
            rng.normal(0.0, 1.0, n),
            rng.normal(0.0, 100.0, n),
            rng.uniform(-2 * fmt.max_value, 2 * fmt.max_value, n),
            rng.uniform(-fmt.min_normal, fmt.min_normal, n),
            rng.normal(0.0, fmt.min_subnormal, n),
        ]
    )


class TestDispatch:
    def test_fast_is_default(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
        assert get_active_kernel() == "fast"

    def test_set_kernel_and_reset(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
        set_kernel("reference")
        try:
            assert get_active_kernel() == "reference"
        finally:
            set_kernel(None)
        assert get_active_kernel() == "fast"

    def test_use_kernel_restores(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
        with use_kernel("reference"):
            assert get_active_kernel() == "reference"
            with use_kernel("fast"):
                assert get_active_kernel() == "fast"
            assert get_active_kernel() == "reference"
        assert get_active_kernel() == "fast"

    def test_env_var_selects_kernel(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "reference")
        assert get_active_kernel() == "reference"

    def test_invalid_names_raise(self, monkeypatch):
        with pytest.raises(ValueError):
            set_kernel("turbo")
        monkeypatch.setenv(KERNEL_ENV_VAR, "turbo")
        with pytest.raises(ValueError):
            get_active_kernel()

    def test_fp8_round_dispatches(self):
        x = np.array([1.05, -3.7, 0.0])
        with use_kernel("reference"):
            ref = fp8_round(x, E4M3)
        with use_kernel("fast"):
            fast = fp8_round(x, E4M3)
        assert_bitequal(ref, fast)

    def test_override_is_thread_local(self, monkeypatch):
        # regression: the override used to be a module global, racing when
        # engine workers or concurrent tests toggled kernels — each thread
        # must now see only its own use_kernel selection
        monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
        n_threads, rounds = 4, 50
        kernels_by_thread = ["fast", "reference"] * (n_threads // 2)
        barrier = threading.Barrier(n_threads)
        failures = []

        def worker(kernel):
            barrier.wait()
            for _ in range(rounds):
                with use_kernel(kernel):
                    if get_active_kernel() != kernel:
                        failures.append(kernel)
            if get_active_kernel() != "fast":
                failures.append(f"{kernel}: override leaked after use_kernel")

        threads = [threading.Thread(target=worker, args=(k,)) for k in kernels_by_thread]
        with use_kernel("reference"):
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert get_active_kernel() == "reference"
        assert not failures

    def test_worker_threads_do_not_inherit_override(self, monkeypatch):
        # thread-locals do not inherit: a worker spawned inside a use_kernel
        # block falls through to the env/default (documented semantics)
        monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
        seen = []
        with use_kernel("reference"):
            t = threading.Thread(target=lambda: seen.append(get_active_kernel()))
            t.start()
            t.join()
        assert seen == ["fast"]


class TestExhaustiveCodeEquivalence:
    @pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
    def test_decode_all_256_codes_bitmatch(self, fmt):
        assert_bitequal(fp8_decode_reference(ALL_CODES, fmt), fp8_decode_fast(ALL_CODES, fmt))

    @pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
    def test_all_512_signed_values_roundtrip(self, fmt):
        """Every representable value (both signs of all 256 magnitudes) survives a round trip."""
        decoded = fp8_decode_fast(ALL_CODES, fmt)
        values = np.concatenate([decoded, -decoded])  # 512 signed values
        finite = values[np.isfinite(values)]
        for arr in (finite.astype(np.float64), finite.astype(np.float32)):
            # grid values are fixed points of rounding (±0 compare as values:
            # the round kernels normalise a -0.0 input to +0.0)
            assert np.array_equal(fp8_round_fast(arr, fmt), arr.astype(np.float32))
            assert_bitequal(fp8_round_fast(arr, fmt), fp8_round_reference(arr, fmt))
            # encode→decode→encode is stable and kernel-independent
            codes_fast = fp8_encode_fast(arr, fmt)
            codes_ref = fp8_encode_reference(arr, fmt)
            np.testing.assert_array_equal(codes_fast, codes_ref)
            assert_bitequal(fp8_decode_fast(codes_fast, fmt), arr.astype(np.float32))

    @pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
    def test_encode_all_decoded_specials_bitmatch(self, fmt):
        """NaN/inf codes encode identically through both kernels."""
        decoded = fp8_decode_fast(ALL_CODES, fmt)
        np.testing.assert_array_equal(
            fp8_encode_reference(decoded, fmt), fp8_encode_fast(decoded, fmt)
        )


class TestRandomTensorEquivalence:
    @pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_round_bitmatch(self, fmt, dtype):
        x = np.concatenate([random_values(fmt), special_values(fmt), tie_values(fmt)])
        x = x.astype(dtype)
        assert_bitequal(fp8_round_reference(x, fmt), fp8_round_fast(x, fmt))

    @pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_encode_bitmatch(self, fmt, dtype):
        x = np.concatenate([random_values(fmt), special_values(fmt), tie_values(fmt)])
        x = x.astype(dtype)
        np.testing.assert_array_equal(fp8_encode_reference(x, fmt), fp8_encode_fast(x, fmt))

    @pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
    def test_round_preserves_shape_and_noncontiguous_input(self, fmt):
        x = np.asfortranarray(np.random.default_rng(3).normal(size=(17, 9)))
        assert_bitequal(fp8_round_reference(x, fmt), fp8_round_fast(x, fmt))
        assert fp8_round_fast(x, fmt).shape == x.shape

    def test_scalar_and_empty_inputs(self):
        assert_bitequal(fp8_round_reference(1.07, E4M3), fp8_round_fast(1.07, E4M3))
        empty = np.empty((0,), dtype=np.float64)
        assert_bitequal(fp8_round_reference(empty, E4M3), fp8_round_fast(empty, E4M3))


class TestFusedQuantizeDequantize:
    @pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
    @pytest.mark.parametrize("axis", [None, 0])
    def test_qdq_bitmatch_between_kernels(self, fmt, axis):
        x = np.random.default_rng(7).normal(0, 3, (16, 24))
        with use_kernel("reference"):
            ref = quantize_dequantize(x, fmt, axis=axis)
        with use_kernel("fast"):
            fast = quantize_dequantize(x, fmt, axis=axis)
        assert_bitequal(ref, fast)

    def test_qdq_explicit_scale_bitmatch(self):
        x = np.random.default_rng(8).normal(size=300).astype(np.float32)
        scale = np.asarray(3.7)
        with use_kernel("reference"):
            ref = quantize_dequantize(x, E3M4, scale=scale)
        with use_kernel("fast"):
            fast = quantize_dequantize(x, E3M4, scale=scale)
        assert_bitequal(ref, fast)

    def test_qdq_propagates_nan(self):
        out = quantize_dequantize(np.array([np.nan, 1.0]), E4M3, scale=np.asarray(1.0))
        assert np.isnan(out[0]) and not np.isnan(out[1])


class TestRoundProperties:
    """Property-style guarantees: fp8_round is idempotent and monotone per format."""

    @pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
    @pytest.mark.parametrize("kernel", ["fast", "reference"])
    def test_idempotent_on_dense_sample(self, fmt, kernel):
        x = np.concatenate([random_values(fmt, seed=11), tie_values(fmt)])
        with use_kernel(kernel):
            once = fp8_round(x, fmt)
            twice = fp8_round(once, fmt)
        # value-level equality: rounding a -0.0 result again normalises it to
        # +0.0 (reference semantics, faithfully replicated by the fast kernel)
        assert np.array_equal(once, twice, equal_nan=True)

    @pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
    @pytest.mark.parametrize("kernel", ["fast", "reference"])
    def test_monotone_on_sorted_sample(self, fmt, kernel):
        x = np.sort(np.concatenate([random_values(fmt, seed=13), tie_values(fmt)]))
        with use_kernel(kernel):
            rounded = fp8_round(x, fmt)
        assert np.all(np.diff(rounded) >= 0)

    @given(st.floats(-1e6, 1e6, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_idempotent_hypothesis(self, value):
        for fmt in FORMATS:
            once = fp8_round_fast(np.array([value]), fmt)
            assert np.array_equal(once, fp8_round_fast(once, fmt))

    @given(st.floats(-1e4, 1e4, allow_nan=False), st.floats(0.0, 10.0, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_monotone_hypothesis(self, value, delta):
        for fmt in FORMATS:
            lo, hi = fp8_round_fast(np.array([value, value + delta]), fmt)
            assert lo <= hi


class TestFormatMethodsDispatch:
    @pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
    def test_format_encode_decode_respect_kernel(self, fmt):
        x = np.concatenate([random_values(fmt, seed=5, n=500), special_values(fmt)])
        with use_kernel("reference"):
            codes_ref = fmt.encode(x)
            dec_ref = fmt.decode(codes_ref)
        with use_kernel("fast"):
            codes_fast = fmt.encode(x)
            dec_fast = fmt.decode(codes_fast)
        np.testing.assert_array_equal(codes_ref, codes_fast)
        assert_bitequal(dec_ref, dec_fast)
        assert codes_fast.dtype == np.uint8

    def test_nan_encodes_to_canonical_code(self):
        for fmt in FORMATS:
            assert int(fmt.encode(np.array([np.nan]))[0]) == fmt.nan_code
            assert np.isnan(fmt.decode(np.array([fmt.nan_code]))[0])

    def test_decode_lut_is_cached_and_readonly(self):
        lut = kernels._decode_lut(E4M3)
        assert lut is kernels._decode_lut(E4M3)
        assert not lut.flags.writeable
