"""Tests for FP8 rounding, scaling and the Q/DQ primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.fp8 import E3M4, E4M3, E5M2
from repro.fp8.quantize import (
    QuantizedTensor,
    compute_scale,
    fp8_round,
    quantize_dequantize,
    quantize_to_fp8,
)

FORMATS = [E5M2, E4M3, E3M4]


class TestFp8Round:
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_values_on_grid_are_unchanged(self, fmt):
        values = fmt.all_values
        assert np.allclose(fp8_round(values, fmt), values)

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_output_lies_on_grid(self, fmt):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 1.0, 1000)
        rounded = fp8_round(x, fmt)
        grid = set(np.round(fmt.all_values, 10).tolist())
        assert all(np.round(float(v), 10) in grid for v in rounded)

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_saturation(self, fmt):
        out = fp8_round(np.array([fmt.max_value * 10, -fmt.max_value * 10]), fmt)
        assert out[0] == pytest.approx(fmt.max_value)
        assert out[1] == pytest.approx(-fmt.max_value)

    def test_infinity_saturates(self):
        out = fp8_round(np.array([np.inf, -np.inf]), E4M3)
        assert out[0] == pytest.approx(E4M3.max_value)
        assert out[1] == pytest.approx(-E4M3.max_value)

    def test_nan_propagates(self):
        out = fp8_round(np.array([np.nan, 1.0]), E4M3)
        assert np.isnan(out[0]) and not np.isnan(out[1])

    def test_round_to_nearest(self):
        # 1.0 and 1.125 are consecutive E4M3 values; 1.05 is closer to 1.0
        assert fp8_round(np.array([1.05]), E4M3)[0] == pytest.approx(1.0)
        assert fp8_round(np.array([1.10]), E4M3)[0] == pytest.approx(1.125)

    def test_ties_to_even_mantissa(self):
        # exactly halfway between 1.0 (mantissa 000) and 1.125 (mantissa 001):
        # ties go to the even mantissa, i.e. 1.0
        assert fp8_round(np.array([1.0625]), E4M3)[0] == pytest.approx(1.0)
        # halfway between 1.125 (001) and 1.25 (010) -> goes up to even 1.25
        assert fp8_round(np.array([1.1875]), E4M3)[0] == pytest.approx(1.25)

    def test_shape_and_dtype_preserved(self):
        x = np.zeros((3, 4, 5))
        out = fp8_round(x, E3M4)
        assert out.shape == x.shape
        assert out.dtype == np.float32

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_error_bounded_by_half_ulp(self, fmt):
        rng = np.random.default_rng(1)
        x = rng.uniform(-fmt.max_value, fmt.max_value, 2000)
        rounded = fp8_round(x, fmt)
        # error must be at most half the local grid spacing
        grid = fmt.positive_values
        idx = np.clip(np.searchsorted(grid, np.abs(x)), 1, grid.size - 1)
        local_ulp = grid[idx] - grid[idx - 1]
        assert np.all(np.abs(rounded - x) <= local_ulp / 2 + 1e-9)

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=hnp.array_shapes(max_dims=3, max_side=8),
            elements=st.floats(-1e4, 1e4, allow_nan=False),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_idempotent(self, x):
        once = fp8_round(x, E4M3)
        twice = fp8_round(once, E4M3)
        assert np.array_equal(once, twice)

    @given(st.floats(min_value=0.0, max_value=400.0, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_sign_symmetry(self, x):
        assert fp8_round(np.array([-x]), E4M3)[0] == pytest.approx(
            -fp8_round(np.array([x]), E4M3)[0]
        )

    @given(st.floats(min_value=-25.0, max_value=25.0, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_monotonicity_samples(self, x):
        a = float(fp8_round(np.array([x]), E3M4)[0])
        b = float(fp8_round(np.array([x + 0.37]), E3M4)[0])
        assert b >= a


class TestScaling:
    def test_per_tensor_scale_maps_absmax_to_fmt_max(self):
        x = np.array([0.1, -2.0, 1.5])
        scale = compute_scale(x, E4M3)
        assert float(np.max(np.abs(x * scale))) == pytest.approx(E4M3.max_value)

    def test_per_channel_scale_shape(self):
        x = np.random.default_rng(0).normal(size=(8, 4, 3, 3))
        scale = compute_scale(x, E4M3, axis=0)
        assert scale.shape == (8, 1, 1, 1)

    def test_per_channel_each_channel_maps_to_max(self):
        x = np.random.default_rng(0).normal(size=(4, 16))
        scale = compute_scale(x, E3M4, axis=0)
        scaled = np.abs(x * scale)
        assert np.allclose(scaled.max(axis=1), E3M4.max_value)

    def test_zero_tensor_does_not_divide_by_zero(self):
        scale = compute_scale(np.zeros(10), E4M3)
        assert np.isfinite(scale).all()

    def test_precomputed_absmax(self):
        scale = compute_scale(np.zeros(3), E4M3, absmax=np.asarray(2.0))
        assert float(scale) == pytest.approx(E4M3.max_value / 2.0)


class TestQuantizeDequantize:
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_error_decreases_with_mantissa_bits_on_gaussian(self, fmt):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 0.5, 20000)
        errors = {f.name: float(np.mean((quantize_dequantize(x, f) - x) ** 2)) for f in FORMATS}
        assert errors["E3M4"] < errors["E4M3"] < errors["E5M2"]

    def test_scaled_better_than_direct_for_small_values(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 0.01, 5000)
        direct = quantize_dequantize(x, E4M3, scale=np.asarray(1.0))
        scaled = quantize_dequantize(x, E4M3)
        assert np.mean((scaled - x) ** 2) < np.mean((direct - x) ** 2)

    def test_quantize_to_fp8_returns_scaled_grid_values(self):
        x = np.array([0.5, -0.25])
        scale = compute_scale(x, E4M3)
        q = quantize_to_fp8(x, E4M3, scale=scale)
        assert np.all(np.abs(q) <= E4M3.max_value)

    def test_roundtrip_preserves_shape(self):
        x = np.random.default_rng(2).normal(size=(2, 3, 4))
        assert quantize_dequantize(x, E3M4).shape == (2, 3, 4)

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(2, 6), st.integers(2, 6)),
            elements=st.floats(-100, 100, allow_nan=False),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_relative_error_bound_with_max_scaling(self, x):
        """With max scaling the elementwise error is bounded by ~half ULP of the scaled value."""
        q = quantize_dequantize(x, E4M3)
        absmax = np.max(np.abs(x))
        if absmax == 0:
            assert np.allclose(q, 0)
        else:
            # max relative step of E4M3 is 2^-3 = 12.5%; allow half of that plus slack
            assert np.all(
                np.abs(q - x) <= np.maximum(np.abs(x) * 0.0625, absmax / 448 * 0.51) + 1e-9
            )

    def test_quantized_tensor_roundtrip(self):
        x = np.random.default_rng(3).normal(size=(5, 7))
        qt = QuantizedTensor.quantize(x, E3M4, axis=0)
        assert qt.shape == x.shape
        deq = qt.dequantize()
        assert np.mean((deq - x) ** 2) < 1e-3

    def test_quantized_tensor_repr(self):
        qt = QuantizedTensor.quantize(np.ones((2, 2)), E4M3)
        assert "E4M3" in repr(qt)
