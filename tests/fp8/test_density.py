"""Tests for the Appendix A.1 density analysis."""

import numpy as np
import pytest

from repro.fp8 import E3M4, E4M3, E5M2
from repro.fp8.density import density_at, format_density, int8_density, representable_count_in_range


class TestAnalyticDensity:
    def test_density_halves_per_binade(self):
        """Eq. 4: density drops by 2x when the magnitude doubles."""
        d1 = density_at(E4M3, 1.0)
        d2 = density_at(E4M3, 2.0)
        assert float(d1) == pytest.approx(2 * float(d2))

    def test_more_mantissa_bits_means_denser(self):
        value = 1.0
        assert float(density_at(E3M4, value)) > float(density_at(E4M3, value)) > float(
            density_at(E5M2, value)
        )

    def test_density_formula_matches_eq4(self):
        # at N in [2^n, 2^(n+1)) density is 2^(m-n)
        assert float(density_at(E4M3, 5.0)) == pytest.approx(2.0 ** (3 - 2))

    def test_vectorised(self):
        out = density_at(E3M4, np.array([0.5, 1.0, 4.0]))
        assert out.shape == (3,)

    def test_empirical_density_matches_analytic_in_normal_range(self):
        grid = np.array([0.3, 0.7, 1.5, 3.0, 6.0])
        empirical = format_density(E3M4, grid)
        analytic = density_at(E3M4, grid)
        assert np.allclose(empirical, analytic, rtol=0.6)


class TestCounts:
    def test_count_in_symmetric_range(self):
        n = representable_count_in_range(E4M3, -1.0, 1.0)
        assert n > 100  # FP8 concentrates most of its values near zero

    def test_count_full_range_equals_table_size(self):
        assert representable_count_in_range(E4M3, -448.0, 448.0) == E4M3.num_finite_values

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            representable_count_in_range(E4M3, 1.0, -1.0)

    def test_fp8_denser_than_int8_near_zero_sparser_near_max(self):
        """The paper's core argument: FP8 trades tail resolution for near-zero resolution."""
        absmax = 6.0
        int8_d = int8_density(absmax)
        near_zero = representable_count_in_range(E4M3, -0.1 * absmax, 0.1 * absmax)
        int8_near_zero = int(int8_d * 0.2 * absmax)
        assert near_zero > int8_near_zero

    def test_int8_density_validates_input(self):
        with pytest.raises(ValueError):
            int8_density(0.0)
