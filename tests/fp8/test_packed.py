"""Packed 8-bit storage round trip: bit-exactness, specials, sizes, state dicts.

The contract under test (see the memory model in :mod:`repro.fp8.quantize`):

* ``QuantizedTensor.quantize(x, fmt, ...).dequantize()`` is bit-identical to
  the value-domain round trip (``quantize_dequantize`` for FP8,
  ``int8_quantize_dequantize`` for INT8) on both kernels — the packed codes
  are storage, not a different quantizer;
* the fused per-axis Q/DQ is bit-identical to the unfused
  ``compute_scale`` + ``quantize_dequantize(scale=...)`` sequence, including
  on the ``reference`` kernel (the acceptance criterion);
* packed storage costs ~¼ of dense float32 bytes.
"""

import numpy as np
import pytest

from repro.fp8 import E2M5, E3M4, E4M3, E5M2, use_kernel
from repro.fp8.int8 import (
    INT8_ASYMMETRIC,
    INT8_SYMMETRIC,
    int8_quantize_dequantize,
)
from repro.fp8.quantize import (
    QuantizedTensor,
    compute_scale,
    fp8_round,
    quantize_dequantize,
)

FORMATS = [E5M2, E4M3, E3M4, E2M5]
KERNELS = ["fast", "reference"]


def _random(shape=(16, 32), seed=0, scale=3.0):
    return (np.random.default_rng(seed).standard_normal(shape) * scale).astype(np.float32)


class TestPackedFp8RoundTrip:
    @pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_scale1_roundtrip_bitmatches_fp8_round(self, fmt, kernel):
        x = _random(seed=1)
        with use_kernel(kernel):
            qt = QuantizedTensor.quantize(x, fmt, scale=np.asarray(1.0))
            expected = fp8_round(x, fmt)
        assert qt.codes.dtype == np.uint8
        deq = qt.dequantize()
        assert deq.dtype == np.float32
        assert np.array_equal(deq, expected)

    @pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("axis", [None, 0, 1])
    def test_roundtrip_bitmatches_qdq(self, fmt, kernel, axis):
        x = _random(seed=2)
        with use_kernel(kernel):
            qt = QuantizedTensor.quantize(x, fmt, axis=axis)
            expected = quantize_dequantize(x, fmt, axis=axis)
        assert np.array_equal(qt.dequantize(), expected)

    @pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_specials(self, fmt, kernel):
        x = np.array([np.nan, np.inf, -np.inf, 0.0, -0.0, 1.0], dtype=np.float32)
        with use_kernel(kernel):
            qt = QuantizedTensor.quantize(x, fmt, scale=np.asarray(1.0))
        deq = qt.dequantize()
        assert np.isnan(deq[0])
        # infinities saturate to +-max_value on the way in
        assert deq[1] == pytest.approx(fmt.max_value)
        assert deq[2] == pytest.approx(-fmt.max_value)
        assert deq[3] == 0.0 and not np.signbit(deq[3])
        # packed codes keep the sign of zero (the value-domain round trip
        # normalises -0.0 to +0.0; storage is richer)
        assert deq[4] == 0.0 and np.signbit(deq[4])
        assert deq[5] == pytest.approx(1.0, rel=0.1)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_per_channel_roundtrip_quality(self, kernel):
        # channels with wildly different ranges stay accurate independently
        x = np.stack([np.full(32, 0.01), np.full(32, 10.0)]).astype(np.float32)
        with use_kernel(kernel):
            qt = QuantizedTensor.quantize(x, E4M3, axis=0)
        deq = qt.dequantize()
        assert np.allclose(deq[0], 0.01, rtol=0.07)
        assert np.allclose(deq[1], 10.0, rtol=0.07)
        assert qt.scale.shape == (2, 1)

    def test_fp64_input_matches_qdq(self):
        x = np.random.default_rng(3).standard_normal((8, 8))  # float64
        qt = QuantizedTensor.quantize(x, E4M3, axis=0)
        assert np.array_equal(qt.dequantize(), quantize_dequantize(x, E4M3, axis=0))


class TestPackedInt8RoundTrip:
    @pytest.mark.parametrize("spec", [INT8_SYMMETRIC, INT8_ASYMMETRIC], ids=lambda s: s.name)
    @pytest.mark.parametrize("axis", [None, 0])
    def test_roundtrip_bitmatches_qdq(self, spec, axis):
        x = _random(seed=4)
        qt = QuantizedTensor.quantize(x, spec, axis=axis)
        expected = int8_quantize_dequantize(x, spec=spec, axis=axis)
        assert qt.codes.dtype == np.int8
        assert np.array_equal(qt.dequantize(), expected)

    def test_nan_lands_on_zero_point(self):
        # packed INT8 has no NaN representation: NaNs take the zero-point code
        x = np.array([np.nan, 1.0, -1.0], dtype=np.float32)
        with pytest.warns(RuntimeWarning, match="non-finite scale"):
            qt = QuantizedTensor.quantize(x, INT8_SYMMETRIC)
        deq = qt.dequantize()
        assert deq[0] == 0.0
        assert np.isfinite(deq).all()

    def test_injected_scale_is_honored(self):
        x = _random(seed=13)
        s = np.asarray(0.05)
        qt = QuantizedTensor.quantize(x, INT8_SYMMETRIC, scale=s)
        assert float(qt.scale) == 0.05
        expected = int8_quantize_dequantize(
            x, spec=INT8_SYMMETRIC, scale=s, zero_point=np.asarray(0.0)
        )
        assert np.array_equal(qt.dequantize(), expected)

    def test_resolves_spec_by_name(self):
        x = _random(seed=5)
        qt = QuantizedTensor.quantize(x, "INT8-asym")
        assert qt.fmt is INT8_ASYMMETRIC
        assert qt.zero_point is not None


class TestFusedVsUnfused:
    @pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("axis", [None, 0])
    def test_fused_axis_qdq_bitmatches_unfused(self, fmt, kernel, axis):
        x = _random((32, 48), seed=6)
        with use_kernel(kernel):
            fused = quantize_dequantize(x, fmt, axis=axis)
            scale = compute_scale(x, fmt, axis=axis)
            # the old unfused pipeline: separate absmax pass, materialised
            # broadcast scale array, then scale->round->rescale
            scale_full = np.ascontiguousarray(np.broadcast_to(scale, x.shape))
            q = fp8_round(np.multiply(x, scale_full, dtype=np.float64), fmt)
            unfused = (q / scale_full).astype(np.float32)
        assert np.array_equal(fused, unfused)


class TestNonFiniteAbsmax:
    def test_all_nan_channel_does_not_poison_others(self):
        x = _random((4, 16), seed=7)
        x[2] = np.nan
        with pytest.warns(RuntimeWarning, match="non-finite absmax"):
            scale = compute_scale(x, E4M3, axis=0)
        assert scale[2, 0] == 1.0
        assert np.isfinite(scale).all()
        with pytest.warns(RuntimeWarning):
            qt = QuantizedTensor.quantize(x, E4M3, axis=0)
        deq = qt.dequantize()
        # the healthy channels survive untouched by the NaN channel
        for ch in (0, 1, 3):
            assert np.isfinite(deq[ch]).all()
            assert np.array_equal(deq[ch], quantize_dequantize(x[ch], E4M3))
        assert np.isnan(deq[2]).all()

    def test_per_tensor_nan_absmax_falls_back_to_scale_1(self):
        with pytest.warns(RuntimeWarning, match="non-finite absmax"):
            scale = compute_scale(np.full(4, np.nan), E4M3)
        assert float(scale) == 1.0


class TestStorageFootprint:
    def test_per_tensor_nbytes_quarter_of_fp32(self):
        x = _random((64, 64), seed=8)
        qt = QuantizedTensor.quantize(x, E4M3)
        assert qt.nbytes_dense == 64 * 64 * 4
        assert 0.25 <= qt.compression_ratio <= 0.26

    def test_per_channel_nbytes_within_bound(self):
        x = _random((64, 64), seed=9)
        for fmt in (E4M3, INT8_SYMMETRIC):
            qt = QuantizedTensor.quantize(x, fmt, axis=0)
            assert qt.nbytes <= 0.3 * qt.nbytes_dense
            assert qt.nbytes >= 0.25 * qt.nbytes_dense

    def test_shape_introspection(self):
        qt = QuantizedTensor.quantize(_random((3, 4, 5), seed=10), E3M4, axis=0)
        assert qt.shape == (3, 4, 5)
        assert qt.ndim == 3
        assert qt.size == 60
        assert "E3M4" in repr(qt)


class TestStateDictRoundTrip:
    @pytest.mark.parametrize(
        "fmt", FORMATS + [INT8_SYMMETRIC, INT8_ASYMMETRIC], ids=lambda f: f.name
    )
    def test_roundtrip(self, fmt):
        x = _random(seed=11)
        qt = QuantizedTensor.quantize(x, fmt, axis=0)
        state = qt.state_dict()
        rebuilt = QuantizedTensor.from_state_dict(state)
        assert rebuilt.fmt is qt.fmt
        assert np.array_equal(rebuilt.codes, qt.codes)
        assert np.array_equal(rebuilt.dequantize(), qt.dequantize())

    def test_state_dict_is_plain_arrays(self):
        qt = QuantizedTensor.quantize(_random(seed=12), E4M3)
        state = qt.state_dict()
        assert set(state) == {"codes", "scale", "format"}
        assert all(isinstance(v, np.ndarray) for v in state.values())


class TestDequantizeBlockEdges:
    """Streaming-primitive edge cases: spans, granularities, zero points."""

    @pytest.mark.parametrize("fmt", [E4M3, INT8_SYMMETRIC], ids=lambda f: f.name)
    def test_block_span_past_axis_end_clamps(self, fmt):
        qt = QuantizedTensor.quantize(_random((10, 6), seed=20), fmt, axis=0)
        full = qt.dequantize()
        block = qt.dequantize_block(8, 100, axis=0)
        assert block.shape == (2, 6)
        assert np.array_equal(block, full[8:])

    @pytest.mark.parametrize("fmt", [E4M3, INT8_SYMMETRIC], ids=lambda f: f.name)
    def test_single_block_covering_whole_axis(self, fmt):
        qt = QuantizedTensor.quantize(_random((7, 5), seed=21), fmt, axis=0)
        assert np.array_equal(qt.dequantize_block(0, 7, axis=0), qt.dequantize())
        # block size larger than the dimension is the same single block
        assert np.array_equal(qt.dequantize_block(0, 512, axis=0), qt.dequantize())

    @pytest.mark.parametrize("fmt", [E4M3, INT8_SYMMETRIC], ids=lambda f: f.name)
    def test_per_tensor_scale_passes_through_unsliced(self, fmt):
        # axis=None -> one scalar scale shared by every block
        qt = QuantizedTensor.quantize(_random((12, 4), seed=22), fmt, axis=None)
        full = qt.dequantize()
        for start in range(0, 12, 5):
            stop = min(start + 5, 12)
            assert np.array_equal(qt.dequantize_block(start, stop, axis=0), full[start:stop])

    def test_int8_zero_point_path_slices_with_codes(self):
        # shift the data so asymmetric INT8 uses genuinely non-zero zero points
        x = _random((16, 8), seed=23) + 4.0
        qt = QuantizedTensor.quantize(x, INT8_ASYMMETRIC, axis=0)
        assert qt.zero_point is not None
        assert np.any(np.asarray(qt.zero_point) != 0)
        full = qt.dequantize()
        for start in range(0, 16, 6):
            stop = min(start + 6, 16)
            assert np.array_equal(qt.dequantize_block(start, stop, axis=0), full[start:stop])

    def test_blocks_along_non_leading_axis(self):
        qt = QuantizedTensor.quantize(_random((6, 9), seed=24), E4M3, axis=1)
        full = qt.dequantize()
        block = qt.dequantize_block(3, 7, axis=1)
        assert np.array_equal(block, full[:, 3:7])

    def test_empty_block(self):
        qt = QuantizedTensor.quantize(_random((4, 4), seed=25), E4M3, axis=0)
        assert qt.dequantize_block(2, 2, axis=0).shape == (0, 4)
