"""Tests for the FP8 binary format specifications (paper Table 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp8 import E3M4, E4M3, E5M2, E2M5, FORMAT_REGISTRY, get_format
from repro.fp8.formats import FP8Format


class TestTable1Properties:
    """The Table 1 rows must be reproduced exactly."""

    def test_e5m2_bias(self):
        assert E5M2.bias == 15

    def test_e4m3_bias(self):
        assert E4M3.bias == 7

    def test_e3m4_bias(self):
        assert E3M4.bias == 3

    def test_e5m2_max_value(self):
        assert E5M2.max_value == 57344.0

    def test_e4m3_max_value(self):
        assert E4M3.max_value == 448.0

    def test_e3m4_max_value(self):
        assert E3M4.max_value == 30.0

    def test_e5m2_min_value(self):
        assert E5M2.min_value == pytest.approx(1.5e-5, rel=0.05)

    def test_e4m3_min_value(self):
        assert E4M3.min_value == pytest.approx(1.9e-3, rel=0.05)

    def test_e3m4_min_value(self):
        assert E3M4.min_value == pytest.approx(1.5e-2, rel=0.05)

    def test_e5m2_has_infinity(self):
        assert E5M2.has_infinity

    def test_extended_formats_have_no_infinity(self):
        assert not E4M3.has_infinity
        assert not E3M4.has_infinity

    def test_nan_encoding_classes(self):
        assert E5M2.nan_encoding == "all"
        assert E4M3.nan_encoding == "single"
        assert E3M4.nan_encoding == "single"

    def test_e5m2_many_nan_codes(self):
        assert E5M2.num_nan_codes == 3  # exponent all-ones with nonzero mantissa

    def test_extended_single_nan_code(self):
        assert E4M3.num_nan_codes == 1
        assert E3M4.num_nan_codes == 1

    def test_describe_contains_table1_fields(self):
        row = E4M3.describe()
        for key in ("exponent_bias", "max_value", "min_value", "nans", "infinity"):
            assert key in row


class TestValueTables:
    def test_bit_budget_must_sum_to_seven(self):
        with pytest.raises(ValueError):
            FP8Format(name="bad", exponent_bits=4, mantissa_bits=4, bias=7, ieee_like=False)

    def test_minimum_exponent_bits(self):
        with pytest.raises(ValueError):
            FP8Format(name="bad", exponent_bits=1, mantissa_bits=6, bias=0, ieee_like=False)

    @pytest.mark.parametrize("fmt", [E5M2, E4M3, E3M4, E2M5])
    def test_positive_values_sorted_unique_nonnegative(self, fmt):
        values = fmt.positive_values
        assert np.all(np.diff(values) > 0)
        assert values[0] == 0.0
        assert values[-1] == fmt.max_value

    @pytest.mark.parametrize("fmt", [E5M2, E4M3, E3M4])
    def test_all_values_symmetric(self, fmt):
        values = fmt.all_values
        nonzero = values[values != 0]
        positives = np.sort(nonzero[nonzero > 0])
        negatives = np.sort(-nonzero[nonzero < 0])
        # every positive value has a negative counterpart and vice versa
        assert positives.size == negatives.size
        assert np.allclose(positives, negatives)

    def test_e4m3_value_count(self):
        # 256 codes - 2 NaN - 1 duplicated zero (+0/-0 collapse) = 253 finite values
        assert E4M3.num_finite_values == 253

    def test_e3m4_value_count(self):
        assert E3M4.num_finite_values == 253

    def test_e5m2_value_count(self):
        # 256 codes - 2*(3 NaN + 1 Inf) - 1 duplicated zero = 247
        assert E5M2.num_finite_values == 247

    @pytest.mark.parametrize("fmt", [E5M2, E4M3, E3M4])
    def test_subnormal_spacing_is_uniform(self, fmt):
        values = fmt.positive_values
        subnormals = values[values < fmt.min_normal]
        spacing = np.diff(subnormals)
        assert np.allclose(spacing, fmt.min_subnormal)

    @pytest.mark.parametrize("fmt", [E5M2, E4M3, E3M4])
    def test_min_normal_follows_bias(self, fmt):
        assert fmt.min_normal == 2.0 ** (1 - fmt.bias)

    def test_is_representable(self):
        assert E4M3.is_representable(448.0)
        assert E4M3.is_representable(-0.25)
        assert not E4M3.is_representable(447.0)
        assert not E4M3.is_representable(np.inf)
        assert E5M2.is_representable(np.inf)


class TestEncodeDecode:
    @pytest.mark.parametrize("fmt", [E5M2, E4M3, E3M4])
    def test_roundtrip_on_grid(self, fmt):
        values = fmt.all_values
        codes = fmt.encode(values)
        decoded = fmt.decode(codes)
        assert np.allclose(decoded, values)

    @pytest.mark.parametrize("fmt", [E5M2, E4M3, E3M4])
    def test_codes_are_uint8(self, fmt):
        codes = fmt.encode(np.array([0.5, -1.25, 3.0]))
        assert codes.dtype == np.uint8

    def test_nan_encodes_to_nan(self):
        codes = E4M3.encode(np.array([np.nan, 1.0]))
        decoded = E4M3.decode(codes)
        assert np.isnan(decoded[0])
        assert not np.isnan(decoded[1])

    def test_negative_sign_bit(self):
        codes = E4M3.encode(np.array([1.0, -1.0]))
        assert codes[1] & 0x80
        assert not (codes[0] & 0x80)

    def test_saturation_on_encode(self):
        decoded = E4M3.decode(E4M3.encode(np.array([1e6, -1e6])))
        assert decoded[0] == pytest.approx(E4M3.max_value)
        assert decoded[1] == pytest.approx(-E4M3.max_value)

    @given(st.floats(min_value=-400.0, max_value=400.0, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_encode_decode_is_nearest_value(self, x):
        decoded = float(E4M3.decode(E4M3.encode(np.array([x])))[0])
        table = E4M3.all_values
        nearest = table[np.argmin(np.abs(table - x))]
        # decoded must be at least as close as the nearest table entry (ties allowed)
        assert abs(decoded - x) <= abs(nearest - x) + 1e-9


class TestRegistry:
    def test_registry_contains_paper_formats(self):
        assert {"E5M2", "E4M3", "E3M4"} <= set(FORMAT_REGISTRY)

    def test_get_format_case_insensitive(self):
        assert get_format("e4m3") is E4M3

    def test_get_format_unknown(self):
        with pytest.raises(KeyError):
            get_format("E7M0")
