"""Tests for the INT8 baseline quantizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp8.int8 import (
    INT8_ASYMMETRIC,
    INT8_SYMMETRIC,
    int8_compute_qparams,
    int8_dequantize,
    int8_quantize,
    int8_quantize_dequantize,
)


class TestSpecs:
    def test_symmetric_range(self):
        assert INT8_SYMMETRIC.qmin == -127
        assert INT8_SYMMETRIC.qmax == 127

    def test_asymmetric_range(self):
        assert INT8_ASYMMETRIC.qmin == -128
        assert INT8_ASYMMETRIC.qmax == 127

    def test_describe(self):
        d = INT8_SYMMETRIC.describe()
        assert d["bits"] == 8 and d["symmetric"] is True


class TestQParams:
    def test_symmetric_zero_point_is_zero(self):
        _, zp = int8_compute_qparams(np.array([-3.0, 5.0]), INT8_SYMMETRIC)
        assert np.all(zp == 0)

    def test_symmetric_scale_from_absmax(self):
        scale, _ = int8_compute_qparams(np.array([-3.0, 5.0]), INT8_SYMMETRIC)
        assert float(scale) == pytest.approx(5.0 / 127)

    def test_asymmetric_covers_range(self):
        x = np.array([0.5, 4.0])
        scale, zp = int8_compute_qparams(x, INT8_ASYMMETRIC)
        deq = int8_dequantize(int8_quantize(x, scale, zp, INT8_ASYMMETRIC), scale, zp)
        assert np.all(np.abs(deq - x) <= scale + 1e-6)

    def test_per_channel_shapes(self):
        x = np.random.default_rng(0).normal(size=(6, 4))
        scale, zp = int8_compute_qparams(x, INT8_SYMMETRIC, axis=0)
        assert scale.shape == (6, 1)
        assert zp.shape == (6, 1)

    def test_zero_input_gives_finite_scale(self):
        scale, _ = int8_compute_qparams(np.zeros(4), INT8_SYMMETRIC)
        assert np.isfinite(scale).all() and float(scale) > 0


class TestRoundTrip:
    def test_codes_within_range(self):
        x = np.random.default_rng(1).normal(size=100) * 10
        scale, zp = int8_compute_qparams(x, INT8_SYMMETRIC)
        q = int8_quantize(x, scale, zp, INT8_SYMMETRIC)
        assert q.min() >= -127 and q.max() <= 127

    def test_uniform_error_bound(self):
        x = np.random.default_rng(2).uniform(-4, 4, 5000)
        deq = int8_quantize_dequantize(x)
        scale = 4.0 / 127
        assert np.max(np.abs(deq - x)) <= scale / 2 + 1e-6

    def test_outliers_stretch_the_grid(self):
        """The INT8 failure mode the paper highlights: one outlier inflates everyone's error."""
        rng = np.random.default_rng(3)
        base = rng.normal(0, 0.5, 5000)
        with_outlier = base.copy()
        with_outlier[0] = 50.0
        err_base = np.mean((int8_quantize_dequantize(base) - base) ** 2)
        q = int8_quantize_dequantize(with_outlier)
        err_outlier = np.mean((q[1:] - with_outlier[1:]) ** 2)
        assert err_outlier > 50 * err_base

    def test_per_channel_beats_per_tensor_for_mismatched_channels(self):
        rng = np.random.default_rng(4)
        x = np.stack([rng.normal(0, 0.01, 256), rng.normal(0, 10.0, 256)])
        per_tensor = int8_quantize_dequantize(x)
        per_channel = int8_quantize_dequantize(x, axis=0)
        err_t = np.mean((per_tensor[0] - x[0]) ** 2)
        err_c = np.mean((per_channel[0] - x[0]) ** 2)
        assert err_c < err_t

    @given(st.lists(st.floats(-1e3, 1e3, allow_nan=False), min_size=2, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_idempotent(self, values):
        x = np.asarray(values)
        scale, zp = int8_compute_qparams(x, INT8_SYMMETRIC)
        once = int8_quantize_dequantize(x, scale=scale, zero_point=zp)
        twice = int8_quantize_dequantize(once, scale=scale, zero_point=zp)
        assert np.allclose(once, twice, atol=1e-6)

    def test_asymmetric_preserves_exact_zero(self):
        x = np.array([0.0, 1.0, 7.3])
        deq = int8_quantize_dequantize(x, spec=INT8_ASYMMETRIC)
        assert deq[0] == pytest.approx(0.0, abs=1e-6)
