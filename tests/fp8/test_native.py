"""Native compiled kernel tier: bit-identity, dispatch, fallback and plans.

The contract under test (see :mod:`repro.fp8.native`):

* the fused decode → rescale C kernel is **bit-identical** to the numpy
  ``fast`` path on every input — all formats, per-tensor and per-channel
  scales, ragged shapes, NaN/inf codes (including NaN payload bits), empty
  arrays — verified by comparing uint32 views;
* the opt-in fused decode → rescale → FMA matmul is exact where every
  partial sum is exactly representable (any accumulation order agrees), and
  eager/plan-replay always agree bit-for-bit because both run the same
  kernel;
* plan replay under the native node compiler is bit-identical to eager for
  both ``REPRO_FP8_KERNEL`` numpy settings and for the native tier;
* with no C compiler the tier resolves to ``fast`` with a single warning and
  everything keeps working.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp8 import E2M5, E3M4, E4M3, E5M2
from repro.fp8 import native
from repro.fp8.kernels import (
    _decode_lut,
    fp8_dequantize_channelwise,
    get_active_kernel,
    use_kernel,
)
from repro.fp8.native import codegen, runtime

FORMATS = [E5M2, E4M3, E3M4, E2M5]

pytestmark = pytest.mark.skipif(not native.native_available(), reason="no C compiler available")


def assert_bits_equal(a, b):
    """float32 arrays must agree bit-for-bit (NaN payloads, signed zeros)."""
    a, b = np.asarray(a), np.asarray(b)
    assert a.dtype == np.float32 and b.dtype == np.float32
    np.testing.assert_array_equal(a.view(np.uint32), b.view(np.uint32))


def numpy_fast_decode(codes, fmt, scale):
    """The numpy ``fast`` oracle the native kernels must reproduce exactly."""
    with use_kernel("fast"):
        return fp8_dequantize_channelwise(codes, fmt, scale)


# ----------------------------------------------------------------------
# fused decode → rescale: bit-identity against the numpy fast oracle
# ----------------------------------------------------------------------
class TestDecodeBitIdentity:
    @settings(max_examples=40, deadline=None)
    @given(
        data=st.data(),
        fmt=st.sampled_from([E4M3, E5M2]),
        rows=st.integers(0, 33),
        cols=st.integers(0, 300),
        per_channel=st.booleans(),
    )
    def test_hypothesis_decode_matches_fast(self, data, fmt, rows, cols, per_channel):
        # random raw codes cover the whole code space: normals, subnormals,
        # signed zeros, infinities (E5M2) and NaNs with payload bits; codes
        # come from a drawn seed because rows*cols can exceed the element
        # count hypothesis will generate as a list
        seed = data.draw(st.integers(0, 2**32 - 1))
        codes = (
            np.random.default_rng(seed)
            .integers(0, 256, size=rows * cols, dtype=np.int64)
            .astype(np.uint8)
            .reshape(rows, cols)
        )
        if per_channel:
            scale = np.asarray(
                data.draw(
                    st.lists(
                        st.floats(1e-6, 1e6, allow_nan=False),
                        min_size=rows,
                        max_size=rows,
                    )
                ),
                dtype=np.float64,
            ).reshape(rows, 1)
        else:
            scale = np.asarray(data.draw(st.floats(1e-6, 1e6, allow_nan=False)))
        got = native.decode_rescale(codes, fmt, scale)
        assert got is not None
        assert_bits_equal(got, numpy_fast_decode(codes, fmt, scale))

    @pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
    @pytest.mark.parametrize("per_channel", [False, True], ids=["tensor", "channel"])
    def test_all_codes_all_formats(self, fmt, per_channel):
        # every code appears in every row; rows wide enough to take the
        # rescaled-LUT branch and narrow slices to take the direct branch
        codes = np.tile(np.arange(256, dtype=np.uint8), (5, 1))
        scale = (
            np.array([[0.25], [1.0], [3.7], [1e-5], [1e5]])
            if per_channel
            else np.asarray(0.37)
        )
        assert_bits_equal(
            native.decode_rescale(codes, fmt, scale),
            numpy_fast_decode(codes, fmt, scale),
        )
        narrow = np.ascontiguousarray(codes[:, :7])
        assert_bits_equal(
            native.decode_rescale(narrow, fmt, scale),
            numpy_fast_decode(narrow, fmt, scale),
        )

    @pytest.mark.parametrize("shape", [(0, 16), (16, 0), (0,), (3, 1), (1, 1)])
    def test_empty_and_degenerate_shapes(self, shape):
        codes = np.zeros(shape, dtype=np.uint8)
        got = native.decode_rescale(codes, E4M3, np.asarray(2.0))
        assert got is not None and got.shape == shape
        assert_bits_equal(got, numpy_fast_decode(codes, E4M3, np.asarray(2.0)))

    def test_ragged_tail_blocks(self):
        # block slicing as the streaming path produces it: a 70-row weight in
        # 32-row blocks leaves a ragged 6-row tail
        rng = np.random.default_rng(5)
        codes = rng.integers(0, 256, (70, 200), dtype=np.uint8)
        scale = np.abs(rng.normal(1.0, 2.0, (70, 1))) + 1e-3
        for start in range(0, 70, 32):
            stop = min(start + 32, 70)
            block, s = codes[start:stop], scale[start:stop]
            assert_bits_equal(
                native.decode_rescale(block, E4M3, s),
                numpy_fast_decode(block, E4M3, s),
            )

    def test_nan_payloads_and_infinities_survive(self):
        # E5M2 is IEEE-like: codes carry ±inf and NaNs with distinct payloads
        codes = np.array([[0x7C, 0xFC, 0x7D, 0x7E, 0x7F, 0xFF]], dtype=np.uint8)
        scale = np.asarray(1.7)
        got = native.decode_rescale(codes, E5M2, scale)
        want = numpy_fast_decode(codes, E5M2, scale)
        assert np.isinf(want[0, 0]) and np.isnan(want[0, 2])
        assert_bits_equal(got, want)

    def test_unsupported_layouts_return_none(self):
        codes = np.zeros((4, 6), dtype=np.uint8)
        # per-column scale (channel axis 1) is not a native layout
        assert native.decode_rescale(codes, E4M3, np.ones((1, 6))) is None
        # int8 codes (the INT8 baseline path) are not FP8 codes
        assert native.decode_rescale(codes.astype(np.int8), E4M3, np.asarray(1.0)) is None


class TestDispatchIntegration:
    def test_channelwise_dispatch_uses_native_and_matches(self):
        rng = np.random.default_rng(11)
        codes = rng.integers(0, 256, (24, 256), dtype=np.uint8)
        scale = np.abs(rng.normal(1.0, 1.0, (24, 1))) + 1e-3
        with use_kernel("native"):
            assert get_active_kernel() == "native"
            got = fp8_dequantize_channelwise(codes, E4M3, scale)
        assert_bits_equal(got, numpy_fast_decode(codes, E4M3, scale))

    def test_native_falls_back_on_unsupported_layout(self):
        # per-column scale: the dispatch must transparently take the numpy path
        rng = np.random.default_rng(12)
        codes = rng.integers(0, 256, (4, 8), dtype=np.uint8)
        scale = np.abs(rng.normal(1.0, 1.0, (1, 8))) + 1e-3
        with use_kernel("native"):
            got = fp8_dequantize_channelwise(codes, E4M3, scale)
        assert_bits_equal(got, numpy_fast_decode(codes, E4M3, scale))

    def test_disk_cache_hits_on_repeat_render(self, tmp_path, monkeypatch):
        monkeypatch.setenv(runtime.CACHE_ENV_VAR, str(tmp_path))
        runtime.reset()
        try:
            assert native.decode_rescale(
                np.zeros((2, 2), np.uint8), E4M3, np.asarray(1.0)
            ) is not None
            sos = sorted(p.name for p in tmp_path.glob("*.so"))
            assert len(sos) == 1
            # a fresh process state must reuse the cached object, not recompile
            runtime.reset()
            mtime = next(tmp_path.glob("*.so")).stat().st_mtime_ns
            assert native.decode_rescale(
                np.zeros((2, 2), np.uint8), E4M3, np.asarray(1.0)
            ) is not None
            assert next(tmp_path.glob("*.so")).stat().st_mtime_ns == mtime
        finally:
            runtime.reset()


# ----------------------------------------------------------------------
# fused decode → rescale → FMA matmul (opt-in)
# ----------------------------------------------------------------------
class _FakeWQ:
    def __init__(self, fmt, codes, scale):
        self.fmt = fmt
        self.codes = codes
        self.scale = scale
        self.zero_point = None


def exact_regime_case(rng, n, rows, cols, fmt=E4M3, per_row=True):
    """A matmul whose partial sums are all exactly representable.

    Activations are small integers and the decoded weights are scaled powers
    of two, so every product and every partial sum is an exact small-ish
    float32 integer multiple — any accumulation order yields identical bits,
    which makes the sequential C kernel comparable against BLAS *exactly*.
    """
    # codes 0x38/0xB8 decode to ±1.0 in E4M3; scale of 0.5 doubles them
    codes = rng.choice(np.array([0x38, 0xB8, 0x00], dtype=np.uint8), (rows, cols))
    scale = np.full((rows, 1), 0.5) if per_row else np.asarray(0.5)
    x = rng.integers(-4, 5, (n, cols)).astype(np.float32)
    lut = _decode_lut(fmt)
    w = (lut[codes].astype(np.float64) / np.asarray(scale)).astype(np.float32)
    return _FakeWQ(fmt, codes, scale), x, x @ w.T


class TestFusedFMA:
    @pytest.mark.parametrize("n", [1, 2, 8, 9, 40], ids=lambda n: f"n{n}")
    @pytest.mark.parametrize("per_row", [True, False], ids=["channel", "tensor"])
    def test_exact_regime_matches_blas_bitwise(self, n, per_row):
        rng = np.random.default_rng(n)
        wq, x, want = exact_regime_case(rng, n, rows=37, cols=129, per_row=per_row)
        y = np.empty((n, 37), dtype=np.float32)
        assert native.qlinear_fma(wq, x, y)
        assert_bits_equal(y, want)

    def test_plan_binding_matches_runtime_dispatch(self):
        rng = np.random.default_rng(0)
        wq, x, _ = exact_regime_case(rng, 3, rows=16, cols=64)
        y_dispatch = np.empty((3, 16), dtype=np.float32)
        assert native.qlinear_fma(wq, x, y_dispatch)
        bound = native.plan_qlinear_fma(wq, 3)
        assert bound is not None
        y_bound = np.empty((3, 16), dtype=np.float32)
        bound(x, y_bound)
        assert_bits_equal(y_bound, y_dispatch)

    def test_batch_specialisations_agree_with_generic(self):
        # the same inputs through the n-specialised kernel (n <= GENERIC_ROWS)
        # and sliced through the generic kernel must agree exactly: identical
        # per-row sequential accumulation, just unrolled differently
        rng = np.random.default_rng(1)
        big_n = codegen.GENERIC_ROWS + 5
        wq, x, _ = exact_regime_case(rng, big_n, rows=11, cols=96)
        y_generic = np.empty((big_n, 11), dtype=np.float32)
        assert native.qlinear_fma(wq, x, y_generic)
        for n in (1, 3, codegen.GENERIC_ROWS):
            xs = np.ascontiguousarray(x[:n])
            y_spec = np.empty((n, 11), dtype=np.float32)
            assert native.qlinear_fma(wq, xs, y_spec)
            assert_bits_equal(y_spec, y_generic[:n])

    def test_fma_requires_opt_in(self, monkeypatch):
        monkeypatch.delenv(native.FMA_ENV_VAR, raising=False)
        assert not native.fma_enabled()
        monkeypatch.setenv(native.FMA_ENV_VAR, "1")
        assert native.fma_enabled()

    def test_empty_batch_zero_fills(self):
        wq, _, _ = exact_regime_case(np.random.default_rng(2), 1, rows=4, cols=8)
        y = np.full((0, 4), np.nan, dtype=np.float32)
        assert native.qlinear_fma(wq, np.empty((0, 8), np.float32), y)


# ----------------------------------------------------------------------
# native node compiler in the plan cache (the second wiring layer)
# ----------------------------------------------------------------------
class TestNativePlanCompiler:
    def _quantized_mlp(self):
        from repro import nn
        from repro.quantization import quantize_model, set_serving_mode, standard_recipe
        from repro.quantization.qconfig import Approach

        rng = np.random.default_rng(7)
        model = nn.Sequential(nn.Linear(32, 48, rng=rng), nn.ReLU(), nn.Linear(48, 16, rng=rng))
        recipe = standard_recipe(
            "E4M3",
            approach=Approach.DYNAMIC,
            skip_first_operator=False,
            skip_last_operator=False,
        )
        qmodel = quantize_model(model, recipe).model
        qmodel.eval()
        set_serving_mode(qmodel, "streaming")
        return qmodel

    @pytest.mark.parametrize("fma", [False, True], ids=["decode-only", "fused-fma"])
    def test_streaming_plan_replay_matches_eager(self, monkeypatch, fma):
        # under the native tier the plan's streaming qlinear nodes either call
        # _stream_matmul (decode-only: native decode per block, BLAS FLOPs) or
        # the pre-bound single-ctypes-call kernel (REPRO_NATIVE_FMA=1); both
        # must verify bit-for-bit against eager, because eager takes the same
        # path — and the cache's compile-time check enforces it
        from repro.autograd.tensor import Tensor, no_grad
        from repro.graph import install_plan_cache, remove_plan_cache

        if fma:
            monkeypatch.setenv(native.FMA_ENV_VAR, "1")
        else:
            monkeypatch.delenv(native.FMA_ENV_VAR, raising=False)
        with use_kernel("native"):
            qmodel = self._quantized_mlp()
            x = Tensor(np.random.default_rng(13).normal(0, 1, (3, 32)).astype(np.float32))
            with no_grad():
                eager = qmodel(x)
            cache = install_plan_cache(qmodel)
            try:
                with no_grad():
                    qmodel(x)
                    replay = qmodel(x)
                stats = cache.stats()
            finally:
                remove_plan_cache(qmodel)
        assert stats["plans"] == 1 and stats["verify_failures"] == 0, stats
        np.testing.assert_array_equal(eager.data, replay.data)

    def test_fma_plan_differs_without_opt_in_weights(self, monkeypatch):
        # sanity on the gating itself: with FMA off the node compiler must
        # not pre-bind (native_call is None -> generic closure)
        from repro.graph.plan import _native_stream_call

        monkeypatch.delenv(native.FMA_ENV_VAR, raising=False)
        with use_kernel("native"):
            assert _native_stream_call(object(), None, None) is None


# ----------------------------------------------------------------------
# codegen properties
# ----------------------------------------------------------------------
class TestCodegen:
    def test_renders_are_deterministic_and_distinct(self):
        a = codegen.render_decode_kernel(E4M3, True)
        assert a == codegen.render_decode_kernel(E4M3, True)
        assert a != codegen.render_decode_kernel(E4M3, False)
        assert a != codegen.render_decode_kernel(E5M2, True)
        assert codegen.render_fma_kernel(E4M3, True, 2) != codegen.render_fma_kernel(E4M3, True, 3)

    def test_lut_bits_are_exact(self):
        src = codegen.render_decode_kernel(E4M3, False)
        for bits in _decode_lut(E4M3).view(np.uint32)[:8]:
            assert f"0x{int(bits):08x}u" in src

    def test_invalid_block_shape_raises(self):
        with pytest.raises(ValueError):
            codegen.render_fma_kernel(E4M3, True, codegen.GENERIC_ROWS + 1)


# ----------------------------------------------------------------------
# no-compiler fallback
# ----------------------------------------------------------------------
class TestNoCompilerFallback:
    @pytest.fixture
    def no_cc(self, monkeypatch):
        monkeypatch.setenv(runtime.CC_ENV_VAR, "/nonexistent/definitely-not-a-cc")
        runtime.reset()
        yield
        runtime.reset()

    def test_native_resolves_to_fast_with_one_warning(self, no_cc):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with use_kernel("native"):
                assert get_active_kernel() == "fast"
                assert get_active_kernel() == "fast"
        relevant = [w for w in caught if "native" in str(w.message)]
        assert len(relevant) == 1

    def test_everything_still_green_without_compiler(self, no_cc):
        rng = np.random.default_rng(9)
        codes = rng.integers(0, 256, (8, 64), dtype=np.uint8)
        scale = np.abs(rng.normal(1.0, 1.0, (8, 1))) + 1e-3
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with use_kernel("native"):
                got = fp8_dequantize_channelwise(codes, E4M3, scale)
            assert not native.native_available()
            assert native.decode_rescale(codes, E4M3, scale) is None
            assert native.plan_qlinear_fma(_FakeWQ(E4M3, codes, scale), 2) is None
        assert_bits_equal(got, numpy_fast_decode(codes, E4M3, scale))
