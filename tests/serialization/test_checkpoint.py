"""Model-level checkpoint tests: property-based round trips + error paths.

The hypothesis sweep drives the full pipeline — pack with ``QuantizedTensor``
across every storage format × per-tensor/per-channel × zero-point config,
flatten through the state tree, write/read the container, rebuild — and
asserts bit-identity of codes, scales, zero points and dequantized values.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.nn as nn
from repro.autograd.tensor import Tensor
from repro.fp8.quantize import QuantizedTensor
from repro.quantization import (
    Approach,
    QuantizedModule,
    extended_recipe,
    int8_recipe,
    quantize_model,
    resident_report,
    standard_recipe,
)
from repro.serialization import (
    CheckpointError,
    flatten_state,
    load_quantized,
    load_recipe,
    read_checkpoint_meta,
    read_container,
    save_quantized,
    unflatten_state,
    write_container,
)

ALL_FORMATS = ["E5M2", "E4M3", "E3M4", "E2M5", "INT8", "INT8-asym"]


def _build_model(seed: int = 3) -> nn.Sequential:
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Linear(32, 48, rng=rng),
        nn.ReLU(),
        nn.Linear(48, 16, rng=rng),
    )


def _probe() -> Tensor:
    return Tensor(np.random.default_rng(11).normal(0, 1, (4, 32)).astype(np.float32))


class TestPackedTensorContainerRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(
        fmt=st.sampled_from(ALL_FORMATS),
        axis=st.sampled_from([None, 0, 1]),
        seed=st.integers(0, 2**16),
        rows=st.integers(1, 9),
        cols=st.integers(1, 9),
    )
    def test_roundtrip_bit_identical(self, tmp_path_factory, fmt, axis, seed, rows, cols):
        x = (np.random.default_rng(seed).standard_normal((rows, cols)) * 4).astype(np.float32)
        qt = QuantizedTensor.quantize(x, fmt, axis=axis)
        state = {
            "codes": qt.codes,
            "scale": np.asarray(qt.scale),
            "format": qt.fmt.name,
        }
        if qt.zero_point is not None:
            state["zero_point"] = np.asarray(qt.zero_point)
        arrays, skeleton = flatten_state({"qt": state})
        path = str(tmp_path_factory.mktemp("ckpt") / "t.rpq")
        write_container(path, arrays, {"state": skeleton})
        loaded_arrays, meta = read_container(path)
        rebuilt = QuantizedTensor.from_state_dict(
            unflatten_state(meta["state"], loaded_arrays)["qt"]
        )
        assert rebuilt.codes.dtype == qt.codes.dtype
        assert np.array_equal(rebuilt.codes, qt.codes)
        assert np.array_equal(np.asarray(rebuilt.scale), np.asarray(qt.scale))
        if qt.zero_point is None:
            assert rebuilt.zero_point is None
        else:
            assert np.array_equal(np.asarray(rebuilt.zero_point), np.asarray(qt.zero_point))
        assert np.array_equal(rebuilt.dequantize(), qt.dequantize())


RECIPES = [
    standard_recipe("E4M3", approach=Approach.DYNAMIC),
    standard_recipe("E3M4"),
    standard_recipe("E5M2"),
    int8_recipe(approach=Approach.DYNAMIC),
    int8_recipe(asymmetric_activations=True, approach=Approach.DYNAMIC),
    extended_recipe("E4M3", mixed_formats=True, batchnorm_calibration=False),
]


def _calib():
    rng = np.random.default_rng(5)
    return [rng.normal(0, 1, (8, 32)).astype(np.float32) for _ in range(3)]


class TestModelCheckpointRoundTrip:
    @pytest.mark.parametrize("recipe", RECIPES, ids=lambda r: r.name)
    def test_save_load_bit_identical(self, tmp_path, recipe):
        model = _build_model()
        model.eval()
        result = quantize_model(model, recipe, calibration_data=_calib())
        probe = _probe()
        expected = result.model(probe).data

        path = str(tmp_path / "model.rpq")
        save_quantized(result.model, path, recipe=recipe)
        loaded = load_quantized(path, _build_model)

        saved_packed = {
            name: m.weight_q
            for name, m in result.model.named_modules()
            if isinstance(m, QuantizedModule) and m.weight_q is not None
        }
        loaded_packed = {
            name: m.weight_q
            for name, m in loaded.named_modules()
            if isinstance(m, QuantizedModule) and m.weight_q is not None
        }
        assert set(saved_packed) == set(loaded_packed)
        for name, qt in saved_packed.items():
            assert np.array_equal(qt.codes, loaded_packed[name].codes), name
            assert np.array_equal(np.asarray(qt.scale), np.asarray(loaded_packed[name].scale)), name
        assert np.array_equal(loaded(probe).data, expected)

    def test_loaded_model_is_restore_free_and_packed_resident(self, tmp_path):
        result = quantize_model(_build_model(), standard_recipe("E4M3", approach=Approach.DYNAMIC))
        path = str(tmp_path / "model.rpq")
        save_quantized(result.model, path)
        loaded = load_quantized(path, _build_model)
        assert resident_report(loaded)["ratio"] <= 0.35
        for _, module in loaded.named_modules():
            if isinstance(module, QuantizedModule):
                assert module.deployed
                with pytest.raises(RuntimeError, match="restore"):
                    module.restore()

    def test_load_with_streaming_mode(self, tmp_path):
        result = quantize_model(_build_model(), standard_recipe("E4M3", approach=Approach.DYNAMIC))
        probe = _probe()
        expected = result.model(probe).data
        path = str(tmp_path / "model.rpq")
        save_quantized(result.model, path)
        loaded = load_quantized(path, _build_model, serving_mode="streaming")
        out = loaded(probe).data
        assert np.allclose(out, expected, rtol=1e-5, atol=1e-6)
        assert resident_report(loaded)["ratio"] <= 0.35  # no cache left behind

    def test_recipe_and_meta_travel(self, tmp_path):
        recipe = standard_recipe("E3M4", approach=Approach.DYNAMIC)
        result = quantize_model(_build_model(), recipe)
        path = str(tmp_path / "model.rpq")
        save_quantized(result.model, path, recipe=recipe, metadata={"run": "unit-test"})
        meta = read_checkpoint_meta(path)
        assert meta["metadata"] == {"run": "unit-test"}
        assert set(meta["quantized_modules"]) == {"0", "2"}
        rebuilt = load_recipe(path)
        assert rebuilt is not None
        assert rebuilt.to_dict() == recipe.to_dict()

    def test_unquantized_params_travel(self, tmp_path):
        """Biases and any unquantized float params must round trip exactly."""
        result = quantize_model(_build_model(), standard_recipe("E4M3", approach=Approach.DYNAMIC))
        path = str(tmp_path / "model.rpq")
        save_quantized(result.model, path)
        loaded = load_quantized(path, _build_model)
        saved_bias = dict(result.model.named_parameters())["0.inner.bias"].data
        loaded_bias = dict(loaded.named_parameters())["0.inner.bias"].data
        assert np.array_equal(saved_bias, loaded_bias)

    def test_checkpoint_never_stores_dense_weights(self, tmp_path):
        """The container must not contain a float32 copy of any packed weight."""
        result = quantize_model(_build_model(), standard_recipe("E4M3", approach=Approach.DYNAMIC))
        path = str(tmp_path / "model.rpq")
        save_quantized(result.model, path)
        arrays, _ = read_container(path)
        weight_shapes = {
            m.weight_q.shape
            for _, m in result.model.named_modules()
            if isinstance(m, QuantizedModule) and m.weight_q is not None
        }
        for name, array in arrays.items():
            if array.dtype == np.float32 and array.shape in weight_shapes:
                raise AssertionError(f"dense float32 weight leaked into checkpoint: {name}")


class TestCheckpointErrorPaths:
    def _saved(self, tmp_path):
        result = quantize_model(_build_model(), standard_recipe("E4M3", approach=Approach.DYNAMIC))
        path = str(tmp_path / "model.rpq")
        save_quantized(result.model, path)
        return path

    def test_wrong_architecture_rejected(self, tmp_path):
        path = self._saved(tmp_path)
        with pytest.raises(CheckpointError, match="does not have"):
            load_quantized(path, lambda: nn.Sequential(nn.Linear(32, 48)))

    def test_wrong_module_type_rejected(self, tmp_path):
        path = self._saved(tmp_path)

        def factory():
            rng = np.random.default_rng(0)
            return nn.Sequential(
                nn.Embedding(32, 48, rng=rng),
                nn.ReLU(),
                nn.Linear(48, 16, rng=rng),
            )

        with pytest.raises(CheckpointError, match="saved as"):
            load_quantized(path, factory)

    def test_already_quantized_factory_rejected(self, tmp_path):
        path = self._saved(tmp_path)

        def factory():
            return quantize_model(
                _build_model(), standard_recipe("E4M3", approach=Approach.DYNAMIC)
            ).model

        with pytest.raises(CheckpointError, match="already wraps"):
            load_quantized(path, factory)

    def test_non_module_factory_rejected(self, tmp_path):
        path = self._saved(tmp_path)
        with pytest.raises(TypeError, match="expected a Module"):
            load_quantized(path, lambda: object())

    def test_non_checkpoint_container_rejected(self, tmp_path):
        path = str(tmp_path / "other.rpq")
        write_container(path, {}, {"kind": "something-else"})
        with pytest.raises(CheckpointError, match="not a packed quantized model"):
            load_quantized(path, _build_model)
