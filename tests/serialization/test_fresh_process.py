"""Fresh-process round trip: the exact check the CI checkpoint-roundtrip job runs.

Runs ``tools/ci_checkpoint_roundtrip.py`` save and load phases as separate
interpreter processes, so nothing can leak through module globals — the same
isolation the CI job gets from separate workflow steps.
"""

import os
import subprocess
import sys

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
TOOL = os.path.join(REPO_ROOT, "tools", "ci_checkpoint_roundtrip.py")


def _run(phase: str, directory: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, TOOL, phase, "--dir", directory],
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_save_then_load_in_fresh_processes(tmp_path):
    directory = str(tmp_path / "roundtrip")
    save = _run("save", directory)
    assert save.returncode == 0, f"save phase failed:\n{save.stdout}\n{save.stderr}"
    assert os.path.exists(os.path.join(directory, "model.rpq"))

    load = _run("load", directory)
    assert load.returncode == 0, f"load phase failed:\n{load.stdout}\n{load.stderr}"
    assert "bit-identical" in load.stdout
