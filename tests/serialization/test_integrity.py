"""Checkpoint integrity: per-span crc32 digests, lazy mmap verification, scrubbing.

Version-2 containers record a crc32 per payload span.  Copied loads verify
eagerly (a flipped byte raises :class:`ChecksumError` at load time); mmap
loads verify lazily on the first decode touch of a view into the corrupted
span, so load stays O(header).  Version-1 checkpoints carry no digests and
load unchanged — forever.  ``verify_container`` / ``tools/verify_checkpoint.py``
scrub checkpoints at rest.
"""

import json
import os
import struct
import subprocess
import sys

import numpy as np
import pytest

import repro.nn as nn
from repro.autograd.tensor import Tensor, no_grad
from repro.quantization import Approach, quantize_model, standard_recipe
from repro.serialization import (
    CheckpointError,
    ChecksumError,
    load_quantized,
    read_container,
    save_quantized,
    verify_container,
    write_container,
)
from repro.serialization.container import verify_view
from repro.serving import FaultSpec, injected

_PREFIX = struct.Struct("<8sIQ")
_ALIGN = 64

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SCRUBBER = os.path.join(REPO_ROOT, "tools", "verify_checkpoint.py")


def _span_table(path):
    """(payload_start, {name: (absolute_offset, nbytes)}) from the raw header."""
    with open(path, "rb") as fh:
        _, _, header_len = _PREFIX.unpack(fh.read(_PREFIX.size))
        header = json.loads(fh.read(header_len).decode("utf-8"))
    payload_start = (_PREFIX.size + header_len + _ALIGN - 1) // _ALIGN * _ALIGN
    return {
        name: (payload_start + int(spec["offset"]), int(spec["nbytes"]))
        for name, spec in header["arrays"].items()
    }


def _flip_byte(path, name, index=0):
    """Flip one payload byte inside array ``name``'s span."""
    offset, nbytes = _span_table(path)[name]
    assert nbytes > index
    with open(path, "r+b") as fh:
        fh.seek(offset + index)
        byte = fh.read(1)[0]
        fh.seek(offset + index)
        fh.write(bytes([byte ^ 0xFF]))


def _arrays(seed=0):
    rng = np.random.default_rng(seed)
    return {
        "codes": rng.integers(0, 255, (48, 32)).astype(np.uint8),
        "scale": rng.normal(0, 1, (48, 1)).astype(np.float64),
        "bias": rng.normal(0, 1, (7,)).astype(np.float32),
    }


def _mlp(seed=0):
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Linear(32, 48, rng=rng),
        nn.ReLU(),
        nn.Linear(48, 16, rng=rng),
    )


def _quantized_checkpoint(tmp_path, name="model.rpq"):
    result = quantize_model(
        _mlp().eval(), standard_recipe("E4M3", approach=Approach.DYNAMIC), deploy=True
    )
    path = str(tmp_path / name)
    save_quantized(result.model, path, recipe=result.recipe)
    return path


def _codes_span_name(path):
    """The biggest uint8 span — a packed codes payload."""
    with open(path, "rb") as fh:
        _, _, header_len = _PREFIX.unpack(fh.read(_PREFIX.size))
        header = json.loads(fh.read(header_len).decode("utf-8"))
    candidates = {
        name: spec["nbytes"]
        for name, spec in header["arrays"].items()
        if spec["dtype"] == "uint8" and "codes" in name
    }
    assert candidates, "no packed codes span found in the checkpoint"
    return max(candidates, key=candidates.get)


class TestDigests:
    def test_v2_roundtrip_and_report(self, tmp_path):
        path = str(tmp_path / "c.rpq")
        arrays = _arrays()
        write_container(path, arrays, {"kind": "test"})
        loaded, _ = read_container(path)
        for name in arrays:
            np.testing.assert_array_equal(loaded[name], arrays[name])
        report = verify_container(path)
        assert report["version"] == 2
        assert report["arrays"] == len(arrays)
        assert report["verified"] == len(arrays)
        assert report["skipped"] == 0

    @pytest.mark.parametrize("name", ["codes", "scale", "bias"])
    def test_flipped_byte_raises_on_copied_load(self, tmp_path, name):
        path = str(tmp_path / "c.rpq")
        write_container(path, _arrays(), {"kind": "test"})
        _flip_byte(path, name, index=3)
        with pytest.raises(ChecksumError, match=f"array {name!r} failed integrity"):
            read_container(path)
        with pytest.raises(ChecksumError):
            verify_container(path)
        assert issubclass(ChecksumError, CheckpointError)  # old handlers still catch

    def test_verify_false_skips_the_check(self, tmp_path):
        path = str(tmp_path / "c.rpq")
        arrays = _arrays()
        write_container(path, arrays, {"kind": "test"})
        _flip_byte(path, "codes", index=0)
        loaded, _ = read_container(path, verify=False)  # corrupt but unchecked
        assert not np.array_equal(loaded["codes"], arrays["codes"])

    def test_v1_has_no_digests_and_loads_unchanged(self, tmp_path):
        path = str(tmp_path / "c.rpq")
        arrays = _arrays()
        write_container(path, arrays, {"kind": "test"}, container_version=1)
        with open(path, "rb") as fh:
            _, version, header_len = _PREFIX.unpack(fh.read(_PREFIX.size))
            header = json.loads(fh.read(header_len).decode("utf-8"))
        assert version == 1
        assert all("crc32" not in spec for spec in header["arrays"].values())
        loaded, _ = read_container(path)
        for name in arrays:
            np.testing.assert_array_equal(loaded[name], arrays[name])
        report = verify_container(path)
        assert report["version"] == 1
        assert report["verified"] == 0
        assert report["skipped"] == len(arrays)
        # and a corrupt v1 file is (by design) undetectable: no digests to check
        _flip_byte(path, "codes")
        read_container(path)

    def test_write_rejects_unknown_version(self, tmp_path):
        with pytest.raises(ValueError, match="container_version"):
            write_container(str(tmp_path / "c.rpq"), _arrays(), {}, container_version=3)


class TestLazyMmapVerification:
    def test_mmap_load_defers_then_first_touch_raises(self, tmp_path):
        path = str(tmp_path / "c.rpq")
        write_container(path, _arrays(), {"kind": "test"})
        _flip_byte(path, "codes", index=5)
        arrays, _ = read_container(path, mmap=True)  # load is lazy: no raise
        with pytest.raises(ChecksumError, match="failed integrity"):
            verify_view(arrays["codes"])
        # untouched pristine spans still verify cleanly
        verify_view(arrays["bias"])

    def test_verified_span_is_retired_not_rechecked(self, tmp_path):
        path = str(tmp_path / "c.rpq")
        arrays = _arrays()
        write_container(path, arrays, {"kind": "test"})
        mapped, _ = read_container(path, mmap=True)
        verify_view(mapped["codes"])
        verify_view(mapped["codes"])  # second touch: span already retired, no-op
        np.testing.assert_array_equal(mapped["codes"], arrays["codes"])

    def test_verify_view_checks_slices_through_base_chain(self, tmp_path):
        path = str(tmp_path / "c.rpq")
        write_container(path, _arrays(), {"kind": "test"})
        _flip_byte(path, "codes", index=0)
        mapped, _ = read_container(path, mmap=True)
        with pytest.raises(ChecksumError):
            verify_view(mapped["codes"][:8])  # a view of a view still verifies

    def test_quantized_model_mmap_corruption_caught_on_first_decode(self, tmp_path):
        path = _quantized_checkpoint(tmp_path)
        _flip_byte(path, _codes_span_name(path), index=17)
        # lazy: the corrupted span is not read at load time, so load succeeds
        model = load_quantized(path, model_factory=_mlp, mmap=True)
        probe = Tensor(np.zeros((2, 32), dtype=np.float32))
        with pytest.raises(ChecksumError, match="failed integrity"):
            with no_grad():
                model(probe)

    def test_quantized_model_copied_corruption_caught_at_load(self, tmp_path):
        path = _quantized_checkpoint(tmp_path)
        _flip_byte(path, _codes_span_name(path), index=17)
        with pytest.raises(ChecksumError):
            load_quantized(path, model_factory=_mlp)

    def test_pristine_mmap_model_forwards_bit_identical(self, tmp_path):
        path = _quantized_checkpoint(tmp_path)
        copied = load_quantized(path, model_factory=_mlp)
        mapped = load_quantized(path, model_factory=_mlp, mmap=True)
        probe = Tensor(np.random.default_rng(1).normal(0, 1, (4, 32)).astype(np.float32))
        with no_grad():
            np.testing.assert_array_equal(mapped(probe).data, copied(probe).data)


class TestCorruptFaultInjection:
    def test_injected_corruption_trips_verification(self, tmp_path):
        path = str(tmp_path / "c.rpq")
        write_container(path, _arrays(), {"kind": "test"})
        with injected({"container.read_span": FaultSpec(kind="corrupt", on_calls={1})}):
            with pytest.raises(ChecksumError):
                read_container(path)
        read_container(path)  # the file itself was never harmed

    def test_injection_window_scopes_the_hook(self, tmp_path):
        path = str(tmp_path / "c.rpq")
        write_container(path, _arrays(), {"kind": "test"})
        with injected({"container.read_span": FaultSpec(kind="corrupt", max_fires=1)}) as inj:
            with pytest.raises(ChecksumError):
                read_container(path)
            assert inj.fired["container.read_span"] == 1
        arrays, _ = read_container(path)  # hook uninstalled: clean read
        np.testing.assert_array_equal(arrays["codes"], _arrays()["codes"])


class TestScrubberTool:
    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, SCRUBBER, *argv],
            capture_output=True,
            text=True,
            timeout=120,
        )

    def test_clean_files_pass(self, tmp_path):
        v2 = str(tmp_path / "v2.rpq")
        v1 = str(tmp_path / "v1.rpq")
        write_container(v2, _arrays(), {"kind": "test"})
        write_container(v1, _arrays(), {"kind": "test"}, container_version=1)
        proc = self._run(v2, v1)
        assert proc.returncode == 0, proc.stderr
        lines = proc.stdout.strip().splitlines()
        assert lines[0].startswith("OK") and "v2" in lines[0]
        assert lines[1].startswith("OK") and "without digests" in lines[1]

    def test_corrupt_file_fails_with_exit_1(self, tmp_path):
        good = str(tmp_path / "good.rpq")
        bad = str(tmp_path / "bad.rpq")
        write_container(good, _arrays(), {"kind": "test"})
        write_container(bad, _arrays(), {"kind": "test"})
        _flip_byte(bad, "scale", index=1)
        proc = self._run(good, bad)
        assert proc.returncode == 1
        assert "CORRUPT" in proc.stderr and "bad.rpq" in proc.stderr
        assert "OK" in proc.stdout  # the clean file still reports

    def test_json_report(self, tmp_path):
        path = str(tmp_path / "c.rpq")
        write_container(path, _arrays(), {"kind": "test"})
        proc = self._run(path, "--json")
        assert proc.returncode == 0
        report = json.loads(proc.stdout.strip())
        assert report["verified"] == 3 and report["version"] == 2

    def test_invalid_file_fails(self, tmp_path):
        junk = tmp_path / "junk.rpq"
        junk.write_bytes(b"not a checkpoint at all")
        proc = self._run(str(junk))
        assert proc.returncode == 1
        assert "INVALID" in proc.stderr
