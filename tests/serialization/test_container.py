"""Container-level format tests: round trip, alignment, corrupt/version errors."""

import json
import struct

import numpy as np
import pytest

from repro.serialization import (
    CONTAINER_MAGIC,
    CONTAINER_VERSION,
    CheckpointError,
    CheckpointVersionError,
    read_container,
    read_header,
    write_container,
)


def _sample_arrays():
    rng = np.random.default_rng(0)
    return {
        "codes": rng.integers(0, 255, (16, 32)).astype(np.uint8),
        "int8": rng.integers(-128, 127, (8,)).astype(np.int8),
        "scale": rng.normal(0, 1, (16, 1)).astype(np.float64),
        "scalar": np.float64(3.5) * np.ones(()),
        "empty": np.zeros((0, 4), dtype=np.float32),
    }


class TestContainerRoundTrip:
    def test_roundtrip_bit_identical(self, tmp_path):
        path = str(tmp_path / "c.rpq")
        arrays = _sample_arrays()
        meta = {"kind": "test", "nested": {"a": [1, 2, None], "b": "x"}}
        total = write_container(path, arrays, meta)
        assert total == (tmp_path / "c.rpq").stat().st_size
        loaded, loaded_meta = read_container(path)
        assert loaded_meta == meta
        assert set(loaded) == set(arrays)
        for name, array in arrays.items():
            assert loaded[name].dtype == array.dtype, name
            assert loaded[name].shape == array.shape, name
            assert np.array_equal(loaded[name], array), name

    def test_loaded_arrays_are_writable(self, tmp_path):
        path = str(tmp_path / "c.rpq")
        write_container(path, {"a": np.arange(4, dtype=np.int32)}, {})
        loaded, _ = read_container(path)
        loaded["a"][0] = 7  # must not raise

    def test_packed_codes_cost_one_byte_per_element(self, tmp_path):
        path = str(tmp_path / "c.rpq")
        codes = np.zeros((256, 256), dtype=np.uint8)
        total = write_container(path, {"codes": codes}, {})
        assert total < codes.size + 4096  # codes + header/alignment slack

    def test_read_header_is_payload_free(self, tmp_path):
        path = str(tmp_path / "c.rpq")
        meta = {"kind": "test", "answer": 42}
        write_container(path, _sample_arrays(), meta)
        assert read_header(path) == meta
        # header parsing must not depend on payload integrity at all
        size = (tmp_path / "c.rpq").stat().st_size
        with open(path, "r+b") as fh:
            fh.truncate(size - 128)
        assert read_header(path) == meta
        with pytest.raises(CheckpointError):
            read_container(path)

    def test_rejects_unsupported_dtype(self, tmp_path):
        path = str(tmp_path / "c.rpq")
        with pytest.raises(CheckpointError, match="unsupported"):
            write_container(path, {"bad": np.array(["a"], dtype=object)}, {})


class TestContainerErrors:
    def _write_valid(self, tmp_path):
        path = str(tmp_path / "c.rpq")
        write_container(path, _sample_arrays(), {"kind": "test"})
        return path

    def test_bad_magic(self, tmp_path):
        path = self._write_valid(tmp_path)
        raw = bytearray(open(path, "rb").read())
        raw[0:4] = b"XXXX"
        open(path, "wb").write(raw)
        with pytest.raises(CheckpointError, match="bad magic"):
            read_container(path)

    def test_newer_version_rejected(self, tmp_path):
        path = self._write_valid(tmp_path)
        raw = bytearray(open(path, "rb").read())
        raw[8:12] = struct.pack("<I", CONTAINER_VERSION + 1)
        open(path, "wb").write(raw)
        with pytest.raises(CheckpointVersionError, match="newer"):
            read_container(path)

    def test_truncated_prefix(self, tmp_path):
        path = self._write_valid(tmp_path)
        raw = open(path, "rb").read()
        open(path, "wb").write(raw[:10])
        with pytest.raises(CheckpointError, match="too short"):
            read_container(path)

    def test_truncated_header(self, tmp_path):
        path = self._write_valid(tmp_path)
        raw = open(path, "rb").read()
        open(path, "wb").write(raw[:24])
        with pytest.raises(CheckpointError, match="truncated header"):
            read_container(path)

    def test_corrupt_header_json(self, tmp_path):
        path = self._write_valid(tmp_path)
        raw = bytearray(open(path, "rb").read())
        raw[20:24] = b"\xff\xfe\x00{"
        open(path, "wb").write(raw)
        with pytest.raises(CheckpointError, match="corrupt header"):
            read_container(path)

    def test_truncated_payload(self, tmp_path):
        path = self._write_valid(tmp_path)
        raw = open(path, "rb").read()
        open(path, "wb").write(raw[:-64])
        with pytest.raises(CheckpointError, match="escapes the file|truncated payload"):
            read_container(path)

    def test_shape_nbytes_mismatch(self, tmp_path):
        path = self._write_valid(tmp_path)
        with open(path, "rb") as fh:
            magic, version, header_len = struct.unpack("<8sIQ", fh.read(20))
            header = json.loads(fh.read(header_len))
            rest = fh.read()
        name = next(iter(header["arrays"]))
        header["arrays"][name]["nbytes"] += 1
        new_header = json.dumps(header).encode()
        with open(path, "wb") as fh:
            fh.write(struct.pack("<8sIQ", magic, version, len(new_header)))
            fh.write(new_header)
            fh.write(rest)
        with pytest.raises(CheckpointError, match="declares"):
            read_container(path)

    def _rewrite_header(self, path, mutate):
        with open(path, "rb") as fh:
            magic, version, header_len = struct.unpack("<8sIQ", fh.read(20))
            header = json.loads(fh.read(header_len))
            rest = fh.read()
        mutate(header)
        new_header = json.dumps(header).encode()
        with open(path, "wb") as fh:
            fh.write(struct.pack("<8sIQ", magic, version, len(new_header)))
            fh.write(new_header)
            fh.write(rest)

    def test_overlapping_spans_rejected(self, tmp_path):
        path = self._write_valid(tmp_path)

        def mutate(header):
            names = list(header["arrays"])
            header["arrays"][names[1]]["offset"] = header["arrays"][names[0]]["offset"]

        self._rewrite_header(path, mutate)
        with pytest.raises(CheckpointError, match="overlap"):
            read_container(path)

    def test_span_escaping_file_rejected(self, tmp_path):
        path = self._write_valid(tmp_path)

        def mutate(header):
            name = next(iter(header["arrays"]))
            header["arrays"][name]["offset"] = 1 << 30

        self._rewrite_header(path, mutate)
        with pytest.raises(CheckpointError, match="escapes the file"):
            read_container(path)

    def test_empty_magic_check(self, tmp_path):
        path = str(tmp_path / "not-a-checkpoint")
        open(path, "wb").write(b"hello world, definitely not a checkpoint")
        with pytest.raises(CheckpointError):
            read_container(path)
        assert CONTAINER_MAGIC not in open(path, "rb").read()
