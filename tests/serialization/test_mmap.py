"""mmap checkpoint loading: zero-copy views, read-only contract, corruption."""

import struct

import numpy as np
import pytest

import repro.nn as nn
from repro.autograd.tensor import Tensor
from repro.fp8.quantize import is_memory_mapped
from repro.quantization import (
    Approach,
    QuantizedModule,
    int8_recipe,
    quantize_model,
    resident_report,
    set_serving_mode,
    standard_recipe,
)
from repro.serialization import (
    CheckpointError,
    load_quantized,
    read_container,
    save_quantized,
    write_container,
)


def _mlp(seed=0):
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Linear(32, 48, rng=rng),
        nn.ReLU(),
        nn.Linear(48, 16, rng=rng),
    )


def _probe(shape=(5, 32), seed=1):
    return Tensor(np.random.default_rng(seed).normal(0, 1, shape).astype(np.float32))


def _wrappers(model):
    return [m for _, m in model.named_modules() if isinstance(m, QuantizedModule)]


def _sample_arrays():
    rng = np.random.default_rng(0)
    return {
        "codes": rng.integers(0, 255, (16, 32)).astype(np.uint8),
        "scale": rng.normal(0, 1, (16, 1)).astype(np.float64),
        "empty": np.zeros((0, 4), dtype=np.float32),
    }


class TestContainerMmap:
    def test_mmap_views_bit_identical_to_copied(self, tmp_path):
        path = str(tmp_path / "c.rpq")
        arrays = _sample_arrays()
        write_container(path, arrays, {"kind": "test"})
        copied, meta_c = read_container(path)
        mapped, meta_m = read_container(path, mmap=True)
        assert meta_c == meta_m
        assert set(copied) == set(mapped)
        for name in arrays:
            assert mapped[name].dtype == copied[name].dtype, name
            assert mapped[name].shape == copied[name].shape, name
            assert np.array_equal(mapped[name], copied[name]), name

    def test_mmap_views_are_read_only(self, tmp_path):
        path = str(tmp_path / "c.rpq")
        write_container(path, _sample_arrays(), {})
        mapped, _ = read_container(path, mmap=True)
        for name, array in mapped.items():
            assert not array.flags.writeable, name
            assert is_memory_mapped(array), name
            with pytest.raises(ValueError):
                array[...] = 0

    def test_mmap_is_zero_copy(self, tmp_path):
        path = str(tmp_path / "c.rpq")
        write_container(path, _sample_arrays(), {})
        mapped, _ = read_container(path, mmap=True)
        bases = {id(_root_base(array)) for array in mapped.values()}
        # every array is a view into the single file mapping
        assert len(bases) == 1

    def test_corrupt_span_raises_checkpoint_error_not_numpy(self, tmp_path):
        path = str(tmp_path / "c.rpq")
        write_container(path, _sample_arrays(), {})
        # truncate into the payload: the span check must fail loudly before
        # any view is built
        size = (tmp_path / "c.rpq").stat().st_size
        with open(path, "r+b") as fh:
            fh.truncate(size - 64)
        with pytest.raises(CheckpointError):
            read_container(path, mmap=True)

    def test_overlapping_spans_rejected_with_mmap(self, tmp_path):
        import json

        path = str(tmp_path / "c.rpq")
        write_container(path, _sample_arrays(), {})
        # rewrite the header so two arrays alias the same payload offset
        prefix_struct = struct.Struct("<8sIQ")
        with open(path, "r+b") as fh:
            magic, version, header_len = prefix_struct.unpack(fh.read(prefix_struct.size))
            header = json.loads(fh.read(header_len).decode("utf-8"))
            header["arrays"]["scale"]["offset"] = header["arrays"]["codes"]["offset"]
            raw = json.dumps(header, sort_keys=True).encode("utf-8")
            raw = raw + b" " * (header_len - len(raw))  # keep offsets stable
            fh.seek(0)
            fh.write(prefix_struct.pack(magic, version, len(raw)))
            fh.write(raw)
        with pytest.raises(CheckpointError, match="overlap"):
            read_container(path, mmap=True)


def _root_base(array):
    while isinstance(getattr(array, "base", None), np.ndarray):
        array = array.base
    return array


class TestLoadQuantizedMmap:
    @pytest.mark.parametrize(
        "recipe",
        [
            standard_recipe("E4M3", approach=Approach.DYNAMIC),
            int8_recipe(asymmetric_activations=True, approach=Approach.DYNAMIC),
        ],
        ids=lambda r: r.name,
    )
    def test_mmap_load_bit_identical_to_copied(self, tmp_path, recipe):
        result = quantize_model(_mlp(), recipe)
        probe = _probe()
        expected = result.model(probe).data
        path = str(tmp_path / "m.rpq")
        save_quantized(result.model, path, recipe=recipe)

        copied = load_quantized(path, _mlp)
        mapped = load_quantized(path, _mlp, mmap=True)
        for (name, wc), (_, wm) in zip(
            [(n, m) for n, m in copied.named_modules() if isinstance(m, QuantizedModule)],
            [(n, m) for n, m in mapped.named_modules() if isinstance(m, QuantizedModule)],
        ):
            assert np.array_equal(wc.weight_q.codes, wm.weight_q.codes), name
            assert np.array_equal(
                np.asarray(wc.weight_q.scale), np.asarray(wm.weight_q.scale)
            ), name
        assert np.array_equal(mapped(probe).data, expected)
        assert np.array_equal(copied(probe).data, expected)

    def test_mmap_load_keeps_codes_mapped_and_resident_low(self, tmp_path):
        result = quantize_model(
            _mlp(), standard_recipe("E4M3", approach=Approach.DYNAMIC), deploy=True
        )
        path = str(tmp_path / "m.rpq")
        save_quantized(result.model, path)
        mapped = load_quantized(path, _mlp, mmap=True)
        for wrapper in _wrappers(mapped):
            assert wrapper.weight_q.is_mapped
            assert not wrapper.weight_q.codes.flags.writeable
        report = resident_report(mapped)
        assert report["mapped_bytes"] > 0
        # before any forward only biases/placeholders are materialised
        packed = sum(w.weight_q.nbytes for w in _wrappers(mapped))
        assert report["resident_bytes"] < packed
        copied_report = resident_report(load_quantized(path, _mlp))
        assert copied_report["mapped_bytes"] == 0

    def test_mmap_codes_raise_on_write(self, tmp_path):
        result = quantize_model(_mlp(), standard_recipe("E4M3", approach=Approach.DYNAMIC))
        path = str(tmp_path / "m.rpq")
        save_quantized(result.model, path)
        mapped = load_quantized(path, _mlp, mmap=True)
        wrapper = _wrappers(mapped)[0]
        with pytest.raises(ValueError):
            wrapper.weight_q.codes[0, 0] = 1

    def test_materialize_is_copy_on_write(self, tmp_path):
        result = quantize_model(_mlp(), standard_recipe("E4M3", approach=Approach.DYNAMIC))
        path = str(tmp_path / "m.rpq")
        save_quantized(result.model, path)
        mapped = load_quantized(path, _mlp, mmap=True)
        wq = _wrappers(mapped)[0].weight_q
        before = wq.dequantize()
        assert wq.is_mapped
        wq.materialize()
        assert not wq.is_mapped
        assert wq.codes.flags.writeable
        wq.codes[...] = 0  # private copy: writable, file untouched
        reread = load_quantized(path, _mlp, mmap=True)
        assert np.array_equal(_wrappers(reread)[0].weight_q.dequantize(), before)

    def test_mmap_streaming_and_prefetch_serving(self, tmp_path):
        result = quantize_model(_mlp(), standard_recipe("E4M3", approach=Approach.DYNAMIC))
        probe = _probe()
        expected = result.model(probe).data
        path = str(tmp_path / "m.rpq")
        save_quantized(result.model, path)
        mapped = load_quantized(path, _mlp, mmap=True)
        set_serving_mode(mapped, "streaming", block_channels=16, prefetch=True)
        assert np.allclose(mapped(probe).data, expected, rtol=1e-5, atol=1e-6)
        for wrapper in _wrappers(mapped):
            assert wrapper._weight_cache is None

    def test_corrupt_checkpoint_mmap_load_raises_checkpoint_error(self, tmp_path):
        result = quantize_model(_mlp(), standard_recipe("E4M3", approach=Approach.DYNAMIC))
        path = str(tmp_path / "m.rpq")
        save_quantized(result.model, path)
        size = (tmp_path / "m.rpq").stat().st_size
        with open(path, "r+b") as fh:
            fh.truncate(size - 256)
        with pytest.raises(CheckpointError):
            load_quantized(path, _mlp, mmap=True)


class TestSharedViews:
    def _save(self, tmp_path, seed=0):
        result = quantize_model(
            _mlp(seed=seed), standard_recipe("E4M3", approach=Approach.DYNAMIC), deploy=True
        )
        path = str(tmp_path / "shared.rpq")
        save_quantized(result.model, path, recipe=result.recipe)
        return path

    def test_share_views_requires_mmap(self, tmp_path):
        path = self._save(tmp_path)
        with pytest.raises(ValueError, match="mmap"):
            load_quantized(path, _mlp, share_views=True)
        with pytest.raises(ValueError, match="mmap"):
            read_container(path, share_views=True)

    def test_replicas_alias_one_mapping(self, tmp_path):
        from repro.serialization import clear_mapping_cache

        path = self._save(tmp_path)
        clear_mapping_cache()
        try:
            replicas = [load_quantized(path, _mlp, mmap=True, share_views=True) for _ in range(3)]
            bases = {id(_root_base(_wrappers(replica)[0].weight_q.codes)) for replica in replicas}
            assert len(bases) == 1
            # the fleet maps the checkpoint bytes exactly once
            one = resident_report(replicas[0])
            fleet = resident_report(replicas)
            assert fleet["mapped_bytes"] == one["mapped_bytes"] > 0
            # while fp32_bytes (the dense baseline) scales with the fleet
            assert fleet["fp32_bytes"] == 3 * one["fp32_bytes"]
        finally:
            del replicas
            clear_mapping_cache()

    def test_unshared_loads_map_separately(self, tmp_path):
        path = self._save(tmp_path)
        m1 = load_quantized(path, _mlp, mmap=True)
        m2 = load_quantized(path, _mlp, mmap=True)
        base1 = _root_base(_wrappers(m1)[0].weight_q.codes)
        base2 = _root_base(_wrappers(m2)[0].weight_q.codes)
        assert base1 is not base2

    def test_shared_replicas_outputs_bit_identical(self, tmp_path):
        from repro.serialization import clear_mapping_cache

        path = self._save(tmp_path)
        clear_mapping_cache()
        try:
            m1 = load_quantized(path, _mlp, mmap=True, share_views=True)
            m2 = load_quantized(path, _mlp, mmap=True, share_views=True)
            copied = load_quantized(path, _mlp)
            probe = _probe()
            out1, out2 = m1(probe).data, m2(probe).data
            assert np.array_equal(out1, out2)
            assert np.array_equal(out1, copied(probe).data)
        finally:
            del m1, m2
            clear_mapping_cache()

    def test_rewritten_file_gets_fresh_mapping(self, tmp_path):
        import time as _time

        from repro.serialization import clear_mapping_cache

        path = self._save(tmp_path, seed=0)
        clear_mapping_cache()
        try:
            before = load_quantized(path, _mlp, mmap=True, share_views=True)
            base_before = _root_base(_wrappers(before)[0].weight_q.codes)
            _time.sleep(0.01)  # ensure a distinct mtime for the rewrite
            result = quantize_model(
                _mlp(seed=9), standard_recipe("E4M3", approach=Approach.DYNAMIC), deploy=True
            )
            save_quantized(result.model, path, recipe=result.recipe)
            after = load_quantized(path, _mlp, mmap=True, share_views=True)
            base_after = _root_base(_wrappers(after)[0].weight_q.codes)
            # a (size, mtime)-mismatched cache entry is never reused
            assert base_before is not base_after
            # the reload really reflects the rewritten weights
            copied = load_quantized(path, _mlp)
            assert np.array_equal(after(_probe()).data, copied(_probe()).data)
        finally:
            del before, after
            clear_mapping_cache()

    def test_clear_mapping_cache_counts_and_resets(self, tmp_path):
        from repro.serialization import clear_mapping_cache

        path = self._save(tmp_path)
        clear_mapping_cache()
        model = load_quantized(path, _mlp, mmap=True, share_views=True)
        base = _root_base(_wrappers(model)[0].weight_q.codes)
        assert clear_mapping_cache() == 1
        assert clear_mapping_cache() == 0
        fresh = load_quantized(path, _mlp, mmap=True, share_views=True)
        assert _root_base(_wrappers(fresh)[0].weight_q.codes) is not base
        clear_mapping_cache()

    def test_unused_mappings_evicted_on_next_miss(self, tmp_path):
        from repro.serialization import clear_mapping_cache
        from repro.serialization.container import _MAPPINGS

        path_a = self._save(tmp_path, seed=0)
        clear_mapping_cache()
        try:
            model_a = load_quantized(path_a, _mlp, mmap=True, share_views=True)
            assert len(_MAPPINGS) == 1
            del model_a  # releases every view into path_a's mapping
            result = quantize_model(
                _mlp(seed=3),
                standard_recipe("E4M3", approach=Approach.DYNAMIC),
                deploy=True,
            )
            path_b = str(tmp_path / "rotated.rpq")
            save_quantized(result.model, path_b, recipe=result.recipe)
            model_b = load_quantized(path_b, _mlp, mmap=True, share_views=True)
            # the miss on path_b swept path_a's now-unreferenced mapping, so
            # rotating checkpoints does not accumulate stale mappings/fds
            assert len(_MAPPINGS) == 1
            del model_b
        finally:
            clear_mapping_cache()

    def test_shared_views_still_memory_mapped_and_read_only(self, tmp_path):
        from repro.serialization import clear_mapping_cache

        path = self._save(tmp_path)
        clear_mapping_cache()
        try:
            model = load_quantized(path, _mlp, mmap=True, share_views=True)
            codes = _wrappers(model)[0].weight_q.codes
            assert is_memory_mapped(codes)
            with pytest.raises((ValueError, RuntimeError)):
                codes[0] = 1
        finally:
            del model
            clear_mapping_cache()
