"""Tests for the evaluation harness, FID proxy, text-generation metrics and reporting."""

import numpy as np
import pytest

from repro.evaluation import (
    EvaluationRecord,
    PassRateReport,
    distinct_n,
    evaluate_generation_quality,
    evaluate_recipe_on_task,
    fid_proxy,
    format_pass_rate_table,
    format_records,
    format_table,
    frechet_distance,
    paper_configurations,
    repetition_rate,
)
from repro.evaluation.fid import FeatureStatistics, RandomFeatureExtractor
from repro.evaluation.textgen import grammar_log_likelihood
from repro.quantization import Approach, standard_recipe


def _record(config="E4M3-static", domain="nlp", passed=True, loss=0.001, size="small"):
    return EvaluationRecord(
        task="t",
        domain=domain,
        size_class=size,
        config=config,
        fmt="E4M3",
        approach="Static",
        fp32_metric=0.9,
        quantized_metric=0.9 * (1 - loss),
        relative_loss=loss,
        passed=passed,
        num_quantized_ops=5,
    )


class TestPassRateReport:
    def test_pass_rate_by_domain(self):
        report = PassRateReport()
        report.add(_record(domain="nlp", passed=True))
        report.add(_record(domain="nlp", passed=False))
        report.add(_record(domain="cv", passed=True))
        assert report.pass_rate("E4M3-static", "nlp") == pytest.approx(0.5)
        assert report.pass_rate("E4M3-static", "cv") == pytest.approx(1.0)
        assert report.pass_rate("E4M3-static") == pytest.approx(2 / 3)

    def test_pass_rate_unknown_config_is_nan(self):
        assert np.isnan(PassRateReport().pass_rate("nope"))

    def test_loss_statistics(self):
        report = PassRateReport()
        for loss in (0.0, 0.01, 0.02):
            report.add(_record(loss=loss))
        stats = report.loss_statistics("E4M3-static")
        assert stats["median"] == pytest.approx(0.01)
        assert stats["max"] == pytest.approx(0.02)

    def test_by_size_class(self):
        report = PassRateReport()
        report.add(_record(size="tiny", loss=0.01))
        report.add(_record(size="large", loss=0.05))
        sizes = report.by_size_class("E4M3-static")
        assert sizes["large"]["mean_loss"] > sizes["tiny"]["mean_loss"]

    def test_summary_rows_order_preserved(self):
        report = PassRateReport()
        report.add(_record(config="A"))
        report.add(_record(config="B"))
        rows = report.summary_rows()
        assert [r["config"] for r in rows] == ["A", "B"]


class TestPaperConfigurations:
    def test_six_configurations(self):
        configs = paper_configurations()
        assert len(configs) == 6
        assert {c.fmt for c in configs} == {"E5M2", "E4M3", "E3M4", "INT8"}

    def test_int8_uses_static_cv_dynamic_nlp(self):
        int8 = next(c for c in paper_configurations() if c.fmt == "INT8")
        assert int8.cv_recipe.approach is Approach.STATIC
        assert int8.nlp_recipe.approach is Approach.DYNAMIC

    def test_nlp_recipes_enable_smoothquant(self):
        configs = paper_configurations(smoothquant_nlp=True)
        assert all(c.nlp_recipe.smoothquant for c in configs)
        configs = paper_configurations(smoothquant_nlp=False)
        assert not any(c.nlp_recipe.smoothquant for c in configs)

    def test_recipe_for_domain(self):
        config = paper_configurations()[0]
        assert config.recipe_for("cv") is config.cv_recipe
        assert config.recipe_for("nlp") is config.nlp_recipe


class TestEvaluateRecipeOnTask:
    def test_record_fields(self, bert_bundle):
        record = evaluate_recipe_on_task(bert_bundle, standard_recipe("E4M3"), config_name="unit")
        assert record.task == bert_bundle.spec.name
        assert record.config == "unit"
        assert 0.0 <= record.quantized_metric <= 1.0
        assert record.num_quantized_ops > 0
        assert isinstance(record.as_dict(), dict)

    def test_fp8_quantization_stays_close_to_fp32(self, bert_bundle):
        record = evaluate_recipe_on_task(bert_bundle, standard_recipe("E4M3"))
        assert abs(record.relative_loss) < 0.05


class TestFID:
    def test_identical_sets_have_near_zero_fid(self):
        images = np.random.default_rng(0).standard_normal((48, 3, 16, 16)).astype(np.float32)
        assert abs(fid_proxy(images, images)) < 1e-3

    def test_fid_increases_with_distortion(self):
        rng = np.random.default_rng(1)
        ref = rng.standard_normal((48, 3, 16, 16)).astype(np.float32)
        slight = ref + 0.1 * rng.standard_normal(ref.shape).astype(np.float32)
        heavy = ref + 2.0 * rng.standard_normal(ref.shape).astype(np.float32)
        assert fid_proxy(ref, slight) < fid_proxy(ref, heavy)

    def test_frechet_distance_symmetric_in_identical_stats(self):
        feats = np.random.default_rng(2).standard_normal((100, 8))
        stats = FeatureStatistics.from_features(feats)
        assert frechet_distance(stats, stats) == pytest.approx(0.0, abs=1e-3)

    def test_extractor_output_shape(self):
        extractor = RandomFeatureExtractor(feature_dim=32)
        feats = extractor(np.zeros((4, 3, 16, 16), dtype=np.float32))
        assert feats.shape == (4, 32)


class TestTextGenMetrics:
    def test_repetition_rate_of_loop(self):
        looping = [1, 2, 3] * 10
        varied = list(range(30))
        assert repetition_rate(looping) > repetition_rate(varied)

    def test_repetition_rate_short_sequence(self):
        assert repetition_rate([1, 2]) == 0.0

    def test_distinct_n(self):
        assert distinct_n([1, 2, 3, 4]) == 1.0
        assert distinct_n([1, 1, 1, 1]) < 1.0

    def test_grammar_log_likelihood_prefers_legal_transitions(self):
        probs = np.array([[0.9, 0.1], [0.1, 0.9]])
        legal = [0, 0, 0, 0]
        illegal = [0, 1, 0, 1]
        assert grammar_log_likelihood(legal, probs) > grammar_log_likelihood(illegal, probs)

    def test_evaluate_generation_quality(self, lm_bundle):
        prompts = lm_bundle.eval_data.inputs[:2, :8]
        quality = evaluate_generation_quality(
            lm_bundle.model, prompts, transition_probs=None, max_new_tokens=8, beam_size=1
        )
        assert 0.0 <= quality.repetition <= 1.0
        assert 0.0 < quality.distinct2 <= 1.0
        assert quality.num_prompts == 2


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}], title="T")
        assert text.startswith("T")
        assert "a" in text and "yy" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_pass_rate_table(self):
        report = PassRateReport()
        report.add(_record())
        text = format_pass_rate_table(report)
        assert "Pass Rate (NLP)" in text and "%" in text

    def test_format_records(self):
        text = format_records([_record()])
        assert "rel loss %" in text
