"""Process-isolated serving workers: crash containment over one shared checkpoint.

The process tier's contract, tested end to end: a worker *process* death from
any cause — ``SIGKILL`` injected through the ``kill`` fault, a child killed
directly while idle, a dispatcher-thread crash — surfaces as the same
:class:`~repro.serving.errors.WorkerCrashed` + requeue + restart flow as a
thread death; results stay bit-identical to single-worker cached mode; and
``close()`` never leaves a zombie process (asserted psutil-free against
``/proc``).  Crash-loop containment (``max_worker_restarts`` →
``EngineFailed`` + ``state == "failed"``) is covered for both worker modes.

Every model and factory here is module-level on purpose: specs and templates
cross the process boundary by pickle, so ``spawn`` children must be able to
import them by reference.
"""

import os
import signal
import time

import numpy as np
import pytest

import repro.nn as nn
from repro.autograd.tensor import Tensor, no_grad
from repro.quantization import Approach, quantize_model, standard_recipe
from repro.serialization import save_quantized
from repro.serving import (
    EngineFailed,
    FaultSpec,
    GenerationRequest,
    InjectedCrash,
    ServingEngine,
    ServingError,
    SubmitOptions,
    WorkerCrashed,
    injected,
)
from repro.serving import faults as faults_mod
from repro.serving.ipc import RemoteError, WorkerProcessDied, wrap_exception
from repro.serving.worker_proc import WorkerSpec

FEATURES = 16


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    yield
    faults_mod.uninstall()
    assert faults_mod.active_injector() is None


class ProcAffine(nn.module.Module):
    """Deterministic elementwise model: bit-identical across any batching."""

    def forward(self, x):
        return Tensor(np.asarray(x.data) * 2.0 + 1.0)


class Unpicklable(nn.module.Module):
    def __init__(self):
        super().__init__()
        self.hook = lambda x: x  # lambdas do not pickle

    def forward(self, x):
        return x


class Poison(nn.module.Module):
    """Raises an *ordinary* exception in the child for marked batches."""

    def forward(self, x):
        data = np.asarray(x.data)
        if np.any(data > 100.0):
            raise ValueError("poison pill in batch")
        return Tensor(data * 1.0)


def dying_factory():
    """Kills the child before the ready handshake — no exception, no reply."""
    os._exit(17)


def build_mlp():
    rng = np.random.default_rng(3)
    return nn.Sequential(
        nn.Linear(FEATURES, FEATURES, rng=rng), nn.ReLU(), nn.Linear(FEATURES, FEATURES, rng=rng)
    )


def _samples(count, shape=(FEATURES,), seed=1):
    rng = np.random.default_rng(seed)
    return [rng.normal(0, 1, shape).astype(np.float32) for _ in range(count)]


@pytest.fixture(scope="module")
def checkpoint(tmp_path_factory):
    result = quantize_model(
        build_mlp(),
        standard_recipe("E4M3", approach=Approach.DYNAMIC),
        deploy=True,
        serving_mode="cached",
    )
    path = tmp_path_factory.mktemp("proc-ckpt") / "model.rpq"
    save_quantized(result.model, str(path), recipe=result.recipe)
    return str(path)


def _process_engine(checkpoint, workers=1, **kwargs):
    kwargs.setdefault("max_batch_size", 8)
    kwargs.setdefault("max_wait_ms", 300.0)
    kwargs.setdefault("supervision_interval_ms", 10.0)
    return ServingEngine.from_checkpoint(
        checkpoint,
        build_mlp,
        serving_mode="cached",
        prefetch=False,
        workers=workers,
        worker_mode="process",
        **kwargs,
    )


def _wait_ready(engine, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        details = engine.stats["process_workers"]
        if details and all(d["ready"] for d in details):
            return details
        time.sleep(0.05)
    raise AssertionError(f"workers never became ready: {engine.stats['process_workers']}")


def _assert_no_zombies(pids, timeout=10.0):
    """psutil-free: each pid must leave /proc (or at least never sit in state Z)."""
    deadline = time.monotonic() + timeout
    remaining = {pid for pid in pids if pid is not None}
    while remaining and time.monotonic() < deadline:
        for pid in list(remaining):
            try:
                with open(f"/proc/{pid}/stat") as fh:
                    state = fh.read().rsplit(")", 1)[-1].split()[0]
            except (FileNotFoundError, ProcessLookupError):
                remaining.discard(pid)
                continue
            assert state != "Z", f"pid {pid} is a zombie after close()"
        time.sleep(0.05)
    assert not remaining, f"worker pids {remaining} still alive after close()"


class TestProcessServing:
    def test_bit_identical_to_cached_single_worker(self, checkpoint):
        """Deterministic groups through process workers == cached eager forward."""
        samples = _samples(16, seed=5)
        with _process_engine(checkpoint, workers=2) as engine:
            outputs = engine.serve_batch(samples, timeout=60)
            with no_grad():
                reference = engine.model(Tensor(np.stack(samples[:8]))).data
                reference2 = engine.model(Tensor(np.stack(samples[8:]))).data
        np.testing.assert_array_equal(np.stack(outputs[:8]), reference)
        np.testing.assert_array_equal(np.stack(outputs[8:]), reference2)

    def test_each_worker_process_maps_checkpoint_once(self, checkpoint):
        with _process_engine(checkpoint, workers=2) as engine:
            details = _wait_ready(engine)
            assert [d["mapped_files"] for d in details] == [1, 1]
            assert {d["pid"] for d in details} != {None}
            assert engine.stats["worker_mode"] == "process"

    def test_child_error_stays_scoped_and_typed(self, checkpoint):
        """An ordinary child exception lands on the future; the worker survives."""
        with ServingEngine(
            Poison(), worker_mode="process", max_wait_ms=20.0, supervision_interval_ms=10.0
        ) as engine:
            bad = engine.submit(np.full((4,), 200.0, dtype=np.float32))
            with pytest.raises(ValueError, match="poison pill"):
                bad.result(timeout=30)
            out = engine.serve(np.zeros(4, dtype=np.float32), timeout=30)
            np.testing.assert_array_equal(out, np.zeros(4, dtype=np.float32))
            assert engine.stats["worker_crashes"] == 0

    def test_generate_raises_typed_valueerror(self, checkpoint):
        with _process_engine(checkpoint) as engine:
            with pytest.raises(ValueError, match="worker_mode='process'"):
                engine.generate(np.array([1, 2]), GenerationRequest(max_new_tokens=2))

    def test_unpicklable_model_fails_fast(self):
        with pytest.raises(TypeError, match="picklable"):
            ServingEngine(Unpicklable(), worker_mode="process")

    def test_replica_lists_are_thread_mode_only(self):
        with pytest.raises(ValueError, match="single template model"):
            ServingEngine([ProcAffine(), ProcAffine()], worker_mode="process")

    def test_worker_mode_validation(self):
        with pytest.raises(ValueError, match="worker_mode"):
            ServingEngine(ProcAffine(), worker_mode="fiber")


class TestKillFault:
    def test_sigkill_recovers_bit_identical(self, checkpoint):
        """The acceptance bar: a SIGKILLed worker is invisible to callers."""
        samples = _samples(16, seed=7)
        with _process_engine(checkpoint, workers=2) as engine:
            before = {d["pid"] for d in _wait_ready(engine)}
            with no_grad():
                reference = engine.model(Tensor(np.stack(samples[:8]))).data
            options = SubmitOptions(max_retries=2, retry_backoff_ms=10.0)
            with injected(
                {"ipc.roundtrip": FaultSpec(kind="kill", on_calls={1}, max_fires=1)}
            ) as injector:
                outputs = engine.serve_batch(samples, options, timeout=120)
            stats = engine.stats
            after = {d["pid"] for d in stats["process_workers"]}
        assert injector.fired["ipc.roundtrip"] == 1
        np.testing.assert_array_equal(np.stack(outputs[:8]), reference)
        assert stats["worker_crashes"] >= 1
        assert stats["worker_restarts"] >= 1
        assert stats["retried_requests"] >= 1
        assert stats["failed_requests"] == 0
        assert after - before, "the killed worker was not restarted as a new process"
        _assert_no_zombies(before | after)

    def test_sigkill_without_retries_fails_typed_with_cause(self, checkpoint):
        with _process_engine(checkpoint) as engine:
            with injected({"ipc.roundtrip": FaultSpec(kind="kill", on_calls={1}, max_fires=1)}):
                future = engine.submit(_samples(1)[0])
                with pytest.raises(WorkerCrashed, match="killed by SIGKILL") as info:
                    future.result(timeout=60)
            assert isinstance(info.value.__cause__, WorkerProcessDied)
            assert isinstance(info.value, ServingError)
            # the restarted worker keeps serving (the fault is spent)
            out = engine.serve(_samples(1, seed=9)[0], timeout=60)
            assert out.shape == (FEATURES,)
            assert engine.stats["worker_crashes"] == 1

    def test_kill_fault_is_process_only_in_thread_mode(self):
        """No kill= handle in thread mode: the injector refuses, typed, scoped."""
        with injected({"engine.forward": FaultSpec(kind="kill", on_calls={1}, max_fires=1)}):
            with ServingEngine(ProcAffine(), max_wait_ms=5.0) as engine:
                future = engine.submit(_samples(1)[0])
                with pytest.raises(RuntimeError, match="process-only|no kill= handle"):
                    future.result(timeout=10)
                # refusal is an ordinary error: the worker thread survives
                assert engine.alive_workers == 1
                assert engine.stats["worker_crashes"] == 0

    def test_idle_child_death_detected_and_restarted(self, checkpoint):
        """A child dying *between* forwards (no pipe EOF in flight) still recovers."""
        with _process_engine(checkpoint) as engine:
            (detail,) = _wait_ready(engine)
            os.kill(detail["pid"], signal.SIGKILL)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                stats = engine.stats
                if stats["worker_restarts"] >= 1 and stats["alive_workers"] >= 1:
                    break
                time.sleep(0.05)
            stats = engine.stats
            assert stats["worker_crashes"] >= 1
            assert stats["worker_restarts"] >= 1
            out = engine.serve(_samples(1)[0], timeout=60)
            assert out.shape == (FEATURES,)
            (after,) = [d["pid"] for d in stats["process_workers"]]
            assert after != detail["pid"]

    def test_retry_budget_spans_thread_and_process_crashes(self, checkpoint):
        """One max_retries budget covers a process SIGKILL *and* a dispatcher crash."""
        with _process_engine(checkpoint) as engine:
            _wait_ready(engine)
            with injected(
                {
                    "ipc.roundtrip": FaultSpec(kind="kill", on_calls={1}, max_fires=1),
                    "engine.forward": FaultSpec(kind="crash", on_calls={2}, max_fires=1),
                }
            ):
                future = engine.submit(
                    _samples(1)[0], SubmitOptions(max_retries=1, retry_backoff_ms=10.0)
                )
                with pytest.raises(WorkerCrashed) as info:
                    future.result(timeout=60)
            # attempt 1 died by SIGKILL, the retry by an injected dispatcher
            # crash — two crashes, one budget, a typed failure with the cause
            assert isinstance(info.value.__cause__, (InjectedCrash, WorkerProcessDied))
            deadline = time.monotonic() + 30
            while engine.stats["worker_crashes"] < 2 and time.monotonic() < deadline:
                time.sleep(0.05)
            stats = engine.stats
            assert stats["worker_crashes"] == 2
            assert stats["retried_requests"] == 1


class TestLifecycle:
    def test_close_reaps_children_zero_zombies(self, checkpoint):
        engine = _process_engine(checkpoint, workers=2)
        pids = [d["pid"] for d in _wait_ready(engine)]
        engine.serve_batch(_samples(8), timeout=60)
        engine.close(timeout=30)
        assert engine.state == "closed"
        _assert_no_zombies(pids)

    def test_close_reaps_even_mid_forward(self, checkpoint):
        """close(timeout) on an engine with queued work: no hung futures, no zombies."""
        engine = _process_engine(checkpoint, max_wait_ms=5.0)
        pids = [d["pid"] for d in _wait_ready(engine)]
        futures = [engine.submit(s) for s in _samples(4)]
        engine.close(timeout=30)
        for future in futures:
            assert future.done()
            exc = future.exception(timeout=0)
            assert exc is None or isinstance(exc, ServingError)
        _assert_no_zombies(pids)

    def test_child_init_failure_fails_engine_typed(self):
        """A replica that cannot build in any child must not crash-loop."""
        spec = WorkerSpec(checkpoint_path="/nonexistent/model.rpq", model_factory=build_mlp)
        engine = ServingEngine(
            ProcAffine(),
            worker_mode="process",
            worker_spec=spec,
            max_wait_ms=5.0,
            supervision_interval_ms=10.0,
        )
        try:
            deadline = time.monotonic() + 30
            while engine.state != "failed" and time.monotonic() < deadline:
                time.sleep(0.05)
            assert engine.stats["state"] == "failed"
            with pytest.raises(EngineFailed, match="failed state"):
                engine.submit(_samples(1)[0])
            assert engine.stats["worker_restarts"] == 0
        finally:
            engine.close(timeout=10)
        assert engine.state == "closed"


class TestNeverReadyContainment:
    def test_children_that_never_start_fail_engine_despite_unlimited_restarts(self, checkpoint):
        """3 consecutive pre-ready deaths -> failed state, even with the default
        max_worker_restarts=None (a child that cannot start is a pure loop)."""
        spec = WorkerSpec(checkpoint_path=checkpoint, model_factory=dying_factory)
        engine = ServingEngine(
            ProcAffine(),
            worker_mode="process",
            worker_spec=spec,
            max_wait_ms=5.0,
            supervision_interval_ms=10.0,
        )
        try:
            deadline = time.monotonic() + 60
            while engine.state != "failed" and time.monotonic() < deadline:
                time.sleep(0.05)
            stats = engine.stats
            assert stats["state"] == "failed"
            assert stats["worker_crashes"] >= 3
            with pytest.raises(EngineFailed):
                engine.submit(_samples(1)[0])
        finally:
            engine.close(timeout=10)
        assert engine.state == "closed"


class TestCrashLoopContainment:
    """Satellite: restart rate limiting applies to thread workers too."""

    def test_thread_crash_loop_enters_failed_state(self):
        with injected({"engine.forward": FaultSpec(kind="crash")}):
            engine = ServingEngine(
                ProcAffine(),
                max_wait_ms=2.0,
                supervision_interval_ms=5.0,
                max_worker_restarts=2,
                restart_window_s=60.0,
            )
            try:
                future = engine.submit(
                    _samples(1)[0], SubmitOptions(max_retries=10, retry_backoff_ms=1.0)
                )
                exc = future.exception(timeout=30)
                # the pending request fails typed (EngineFailed once the loop is
                # contained, or WorkerCrashed if its retry raced the shutdown)
                assert isinstance(exc, ServingError)
                deadline = time.monotonic() + 10
                while engine.state != "failed" and time.monotonic() < deadline:
                    time.sleep(0.02)
                stats = engine.stats
                assert stats["state"] == "failed"
                assert stats["worker_restarts"] == 2
                with pytest.raises(EngineFailed, match="max_worker_restarts"):
                    engine.submit(_samples(1)[0])
            finally:
                engine.close(timeout=10)
        assert engine.state == "closed"

    def test_restart_budget_not_consumed_by_healthy_engine(self):
        samples = _samples(6)
        with injected({"engine.forward": FaultSpec(kind="crash", on_calls={1}, max_fires=1)}):
            with ServingEngine(
                ProcAffine(),
                max_wait_ms=2.0,
                supervision_interval_ms=5.0,
                max_worker_restarts=5,
                restart_window_s=60.0,
            ) as engine:
                outputs = engine.serve_batch(
                    samples, SubmitOptions(max_retries=2, retry_backoff_ms=5.0), timeout=30
                )
                assert engine.state == "serving"
                assert engine.stats["worker_restarts"] == 1
        for out, sample in zip(outputs, samples):
            np.testing.assert_array_equal(out, sample * 2.0 + 1.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="max_worker_restarts"):
            ServingEngine(ProcAffine(), max_worker_restarts=-1)
        with pytest.raises(ValueError, match="restart_window_s"):
            ServingEngine(ProcAffine(), restart_window_s=0.0)


class TestDrainEdgeCases:
    """Satellite: a worker dying *while* the engine drains still recovers."""

    def test_worker_crash_during_drain_recovers_queued_work(self):
        samples = _samples(3, shape=(4,))
        with injected({"engine.forward": FaultSpec(kind="crash", on_calls={2}, max_fires=1)}):
            engine = ServingEngine(
                ProcAffine(), max_batch_size=1, max_wait_ms=2.0, supervision_interval_ms=5.0
            )
            options = SubmitOptions(max_retries=2, retry_backoff_ms=5.0)
            futures = [engine.submit(s, options) for s in samples]
            engine.drain()
            assert engine.state == "draining"
            for sample, future in zip(samples, futures):
                np.testing.assert_array_equal(future.result(timeout=30), sample * 2.0 + 1.0)
            stats = engine.stats
            assert stats["worker_crashes"] >= 1
            assert stats["worker_restarts"] >= 1
            engine.close(timeout=10)


class TestFaultSurface:
    def test_sites_listing_exposed(self):
        with injected(
            {
                "ipc.roundtrip": FaultSpec(kind="kill"),
                "engine.forward": FaultSpec(kind="crash"),
            }
        ) as injector:
            assert injector.sites() == ("engine.forward", "ipc.roundtrip")
        assert "ipc.roundtrip" in faults_mod.KNOWN_SITES
        assert set(injector.sites()) <= set(faults_mod.KNOWN_SITES)

    def test_kill_is_a_known_kind(self):
        spec = FaultSpec(kind="kill")
        assert spec.kind == "kill"
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(kind="sigkill")


class TestIpcHelpers:
    def test_wrap_exception_passthrough_and_remote(self):
        plain = ValueError("fits through the pipe")
        assert wrap_exception(plain) is plain

        class Local(Exception):  # local classes do not pickle by reference
            pass

        try:
            raise Local("stuck")
        except Local as exc:
            wrapped = wrap_exception(exc)
        assert isinstance(wrapped, RemoteError)
        assert "Local" in str(wrapped)
        assert "stuck" in wrapped.remote_traceback

    def test_worker_process_died_escapes_except_exception(self):
        with pytest.raises(WorkerProcessDied):
            try:
                raise WorkerProcessDied("gone", exitcode=-9)
            except Exception:  # noqa: BLE001 — the point: process deaths escape
                pytest.fail("WorkerProcessDied absorbed by `except Exception`")
        assert WorkerProcessDied("x", exitcode=-9).exitcode == -9
