"""Fault injection and the resilience layer it exercises.

Every recovery path gets its failure *injected* at a named site: worker
crashes mid-forward (supervision + restart + retry), transient forward
errors (retry absorbs, or the original exception lands on the future), hung
forwards (heartbeat abandonment), queue overload (fast-fail and priority
shedding), drain/close lifecycle, generation tick-thread death, and prefetch
error chaining.  The acceptance bar throughout: under any injected fault,
every submitted request either completes (bit-identical to the uncrashed
run) or fails with a typed :class:`~repro.serving.errors.ServingError` —
zero hung futures or streams.
"""

import threading
import time
from concurrent.futures import Future

import numpy as np
import pytest

import repro.nn as nn
from repro.autograd.tensor import Tensor
from repro.models.transformer import GPTStyleLM
from repro.serving import (
    BlockPrefetcher,
    EngineClosed,
    EngineDraining,
    FaultInjector,
    FaultSpec,
    GenerationRequest,
    InjectedCrash,
    InjectedError,
    PrefetchError,
    QueueFull,
    RequestShed,
    ServingEngine,
    ServingError,
    SubmitOptions,
    WorkerCrashed,
    injected,
)
from repro.serving import faults as faults_mod
from repro.fp8 import E4M3
from repro.fp8.quantize import QuantizedTensor


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    """No test may leave a process-wide injector behind."""
    yield
    faults_mod.uninstall()
    assert faults_mod.active_injector() is None


class Affine(nn.module.Module):
    """Deterministic elementwise model: bit-identical across any batching."""

    def forward(self, x):
        return Tensor(np.asarray(x.data) * 2.0 + 1.0)


class Gate(nn.module.Module):
    """Forward blocks until released — makes queue buildup deterministic."""

    def __init__(self):
        super().__init__()
        self.release = threading.Event()
        self.entered = threading.Event()

    def forward(self, x):
        self.entered.set()
        assert self.release.wait(timeout=10), "Gate never released"
        return Tensor(np.asarray(x.data) * 1.0)


def _samples(count, shape=(6,), seed=1):
    rng = np.random.default_rng(seed)
    return [rng.normal(0, 1, shape).astype(np.float32) for _ in range(count)]


def small_lm(seed=0, max_seq_len=64):
    model = GPTStyleLM(
        vocab_size=32, max_seq_len=max_seq_len, embed_dim=32, num_heads=4, num_layers=2, rng=seed
    )
    return model.eval()


class TestFaultInjector:
    def test_spec_validation(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(kind="meltdown")
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(kind="crash", probability=1.5)
        with pytest.raises(ValueError, match="max_fires"):
            FaultSpec(kind="crash", max_fires=0)
        with pytest.raises(TypeError, match="FaultSpec"):
            FaultInjector({"site": ["crash"]})

    def test_on_calls_is_deterministic(self):
        injector = FaultInjector({"site": FaultSpec(kind="error", on_calls={2, 4})})
        outcomes = []
        for _ in range(5):
            try:
                injector.fire("site")
                outcomes.append("ok")
            except InjectedError:
                outcomes.append("boom")
        assert outcomes == ["ok", "boom", "ok", "boom", "ok"]
        assert injector.calls["site"] == 5
        assert injector.fired["site"] == 2

    def test_max_fires_caps_the_fault(self):
        injector = FaultInjector({"site": FaultSpec(kind="error", max_fires=1)})
        with pytest.raises(InjectedError):
            injector.fire("site")
        injector.fire("site")  # spent — no longer raises
        assert injector.fired["site"] == 1

    def test_probability_is_seed_reproducible(self):
        def run(seed):
            injector = FaultInjector({"site": FaultSpec(kind="error", probability=0.5)}, seed=seed)
            hits = []
            for call in range(20):
                try:
                    injector.fire("site")
                except InjectedError:
                    hits.append(call)
            return hits

        assert run(7) == run(7)
        assert run(7) != run(8)  # astronomically unlikely to collide

    def test_crash_passes_through_except_exception(self):
        injector = FaultInjector({"site": FaultSpec(kind="crash")})
        with pytest.raises(InjectedCrash):
            try:
                injector.fire("site")
            except Exception:  # noqa: BLE001 — the point: crashes must escape this
                pytest.fail("InjectedCrash was absorbed by an `except Exception`")

    def test_corrupt_flips_exactly_one_byte(self):
        injector = FaultInjector({"site": FaultSpec(kind="corrupt")})
        buffer = bytearray(b"\x00" * 64)
        injector.fire("site", buffer=buffer)
        assert sum(1 for b in buffer if b != 0) == 1
        assert max(buffer) == 0xFF

    def test_slow_sleeps(self):
        injector = FaultInjector({"site": FaultSpec(kind="slow", delay_s=0.05)})
        start = time.monotonic()
        injector.fire("site")
        assert time.monotonic() - start >= 0.04

    def test_scoped_install(self):
        assert faults_mod.active_injector() is None
        with injected({"site": FaultSpec(kind="error")}) as injector:
            assert faults_mod.active_injector() is injector
            with pytest.raises(InjectedError):
                faults_mod.fire("site")
        assert faults_mod.active_injector() is None
        faults_mod.fire("site")  # uninstalled: free no-op

    def test_retry_options_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            SubmitOptions(max_retries=-1).validated()
        with pytest.raises(ValueError, match="retry_backoff_ms"):
            SubmitOptions(retry_backoff_ms=-1.0).validated()


class TestWorkerCrashRecovery:
    def test_crash_with_retries_completes_bit_identical(self):
        """The acceptance bar: a crash mid-forward is invisible to callers."""
        samples = _samples(6)
        with ServingEngine(Affine(), max_batch_size=4, max_wait_ms=5) as clean:
            expected = clean.serve_batch(samples, timeout=10)
        options = SubmitOptions(max_retries=2, retry_backoff_ms=5.0)
        with injected(
            {"engine.forward": FaultSpec(kind="crash", on_calls={1}, max_fires=1)}
        ) as injector:
            with ServingEngine(
                Affine(), max_batch_size=4, max_wait_ms=5, supervision_interval_ms=5
            ) as engine:
                outputs = engine.serve_batch(samples, options, timeout=20)
                stats = engine.stats
        assert injector.fired["engine.forward"] == 1
        for out, exp in zip(outputs, expected):
            np.testing.assert_array_equal(out, exp)
        assert stats["worker_crashes"] >= 1
        assert stats["worker_restarts"] >= 1
        assert stats["retried_requests"] >= 1
        assert stats["failed_requests"] == 0

    def test_crash_without_retries_fails_typed_and_fast(self):
        with injected({"engine.forward": FaultSpec(kind="crash", max_fires=1)}):
            with ServingEngine(
                Affine(), max_batch_size=2, max_wait_ms=2, supervision_interval_ms=5
            ) as engine:
                future = engine.submit(_samples(1)[0])
                with pytest.raises(WorkerCrashed, match="died mid-forward") as info:
                    future.result(timeout=10)
                assert isinstance(info.value.__cause__, InjectedCrash)
                assert isinstance(info.value, ServingError)
                # the restarted worker keeps serving (the fault is spent)
                out = engine.serve(np.ones(6, dtype=np.float32), timeout=10)
                np.testing.assert_array_equal(out, np.full(6, 3.0, dtype=np.float32))
                assert engine.stats["worker_crashes"] == 1
                assert engine.alive_workers == 1

    def test_transient_error_absorbed_by_retry(self):
        sample = _samples(1)[0]
        with injected({"engine.forward": FaultSpec(kind="error", on_calls={1}, max_fires=1)}):
            with ServingEngine(Affine(), max_wait_ms=2) as engine:
                out = engine.serve(
                    sample, SubmitOptions(max_retries=1, retry_backoff_ms=5.0), timeout=10
                )
                stats = engine.stats
        np.testing.assert_array_equal(out, sample * 2.0 + 1.0)
        assert stats["retried_requests"] == 1
        assert stats["failed_requests"] == 0
        assert stats["worker_crashes"] == 0  # an error is not a death

    def test_transient_error_without_retries_delivers_original_exception(self):
        with injected({"engine.forward": FaultSpec(kind="error", max_fires=1)}):
            with ServingEngine(Affine(), max_wait_ms=2) as engine:
                future = engine.submit(_samples(1)[0])
                with pytest.raises(InjectedError, match="injected transient error"):
                    future.result(timeout=10)

    def test_retry_budget_exhaustion_fails_with_worker_crashed(self):
        # the fault always fires: two retries burn down, then a typed failure
        with injected({"engine.forward": FaultSpec(kind="crash")}):
            with ServingEngine(
                Affine(), max_wait_ms=2, supervision_interval_ms=5
            ) as engine:
                future = engine.submit(
                    _samples(1)[0], SubmitOptions(max_retries=2, retry_backoff_ms=1.0)
                )
                with pytest.raises(WorkerCrashed):
                    future.result(timeout=15)
                assert engine.stats["retried_requests"] == 2

    def test_no_hung_futures_under_repeated_crashes(self):
        """Crash several groups across a burst: every future resolves, typed."""
        samples = _samples(10, shape=(4,))
        spec = FaultSpec(kind="crash", on_calls={1, 3}, max_fires=2)
        with injected({"engine.forward": spec}):
            with ServingEngine(
                Affine(),
                max_batch_size=2,
                max_wait_ms=2,
                workers=2,
                supervision_interval_ms=5,
            ) as engine:
                options = SubmitOptions(max_retries=3, retry_backoff_ms=2.0)
                futures = [engine.submit(s, options) for s in samples]
                for sample, future in zip(samples, futures):
                    out = future.result(timeout=20)  # nothing hangs
                    np.testing.assert_array_equal(out, sample * 2.0 + 1.0)

    def test_hung_worker_abandoned_and_replaced(self):
        spec = FaultSpec(kind="slow", delay_s=1.0, max_fires=1)
        with injected({"engine.forward": spec}):
            with ServingEngine(
                Affine(),
                max_wait_ms=2,
                hung_forward_timeout_ms=50,
                supervision_interval_ms=10,
            ) as engine:
                future = engine.submit(_samples(1)[0])
                with pytest.raises(WorkerCrashed, match="abandoned as hung"):
                    future.result(timeout=10)
                stats = engine.stats
                assert stats["hung_workers"] == 1
                # the replacement serves while the zombie is still sleeping
                out = engine.serve(np.zeros(3, dtype=np.float32), timeout=10)
                np.testing.assert_array_equal(out, np.ones(3, dtype=np.float32))

    def test_restart_disabled_close_does_not_hang(self):
        """Satellite: close() must not block forever on a dead worker mid-drain."""
        gate = Gate()
        with injected({"engine.forward": FaultSpec(kind="crash", on_calls={1}, max_fires=1)}):
            engine = ServingEngine(
                gate,
                max_batch_size=1,
                max_wait_ms=2,
                restart_crashed_workers=False,
                supervision_interval_ms=5,
            )
            crashed = engine.submit(_samples(1)[0])
            with pytest.raises(WorkerCrashed):
                crashed.result(timeout=10)
            assert engine.alive_workers == 0
            # queued behind a dead (unreplaced) worker: close must fail it, not hang
            stranded = engine.submit(_samples(1)[0])
            start = time.monotonic()
            engine.close(timeout=0.5)
            assert time.monotonic() - start < 5.0
            with pytest.raises(WorkerCrashed, match="engine closed before"):
                stranded.result(timeout=0)  # already resolved — no wait


class TestOverloadControl:
    def test_queue_full_fast_fail(self):
        gate = Gate()
        with ServingEngine(gate, max_batch_size=1, max_wait_ms=1, max_queue_depth=2) as engine:
            inflight = engine.submit(_samples(1)[0])
            assert gate.entered.wait(timeout=10)  # worker is busy, queue is empty
            queued = [engine.submit(s) for s in _samples(2, seed=2)]
            with pytest.raises(QueueFull, match="depth cap"):
                engine.submit(_samples(1, seed=3)[0])
            assert engine.stats["rejected_requests"] == 1
            gate.release.set()
            for future in [inflight, *queued]:
                future.result(timeout=10)
        assert engine.stats["shed_requests"] == 0

    def test_priority_shedding_evicts_lowest_class(self):
        gate = Gate()
        with ServingEngine(
            gate,
            max_batch_size=1,
            max_wait_ms=1,
            max_queue_depth=2,
            shed_policy="priority",
        ) as engine:
            inflight = engine.submit(_samples(1)[0])
            assert gate.entered.wait(timeout=10)
            low = [engine.submit(s, SubmitOptions(priority=0)) for s in _samples(2, seed=2)]
            vip = engine.submit(_samples(1, seed=3)[0], SubmitOptions(priority=5))
            gate.release.set()
            with pytest.raises(RequestShed, match="shed"):
                low[1].result(timeout=10)  # least urgent lowest-priority victim
            for future in (inflight, low[0], vip):
                future.result(timeout=10)
            stats = engine.stats
        assert stats["shed_requests"] == 1
        assert isinstance(RequestShed("x"), ServingError)

    def test_equal_priority_is_never_shed(self):
        gate = Gate()
        with ServingEngine(
            gate,
            max_batch_size=1,
            max_wait_ms=1,
            max_queue_depth=1,
            shed_policy="priority",
        ) as engine:
            inflight = engine.submit(_samples(1)[0])
            assert gate.entered.wait(timeout=10)
            queued = engine.submit(_samples(1, seed=2)[0], SubmitOptions(priority=1))
            with pytest.raises(QueueFull):  # same class: reject newcomer, keep victim
                engine.submit(_samples(1, seed=3)[0], SubmitOptions(priority=1))
            gate.release.set()
            inflight.result(timeout=10)
            queued.result(timeout=10)


class TestLifecycleStates:
    def test_drain_rejects_new_but_serves_queued(self):
        gate = Gate()
        with ServingEngine(gate, max_batch_size=1, max_wait_ms=1) as engine:
            assert engine.state == "serving"
            inflight = engine.submit(_samples(1)[0])
            assert gate.entered.wait(timeout=10)
            queued = engine.submit(_samples(1, seed=2)[0])
            engine.drain()
            assert engine.state == "draining"
            with pytest.raises(EngineDraining, match="draining"):
                engine.submit(_samples(1, seed=3)[0])
            gate.release.set()
            inflight.result(timeout=10)
            queued.result(timeout=10)
        assert engine.state == "closed"

    def test_drain_rejects_generation_too(self):
        model = small_lm()
        with ServingEngine(model, plan_cache=False) as engine:
            engine.drain()
            with pytest.raises(EngineDraining):
                engine.generate(np.array([1, 2]), GenerationRequest(max_new_tokens=2))

    def test_closed_submit_is_typed_and_matches_legacy_message(self):
        engine = ServingEngine(Affine(), max_wait_ms=1)
        engine.close()
        with pytest.raises(EngineClosed, match="closed"):
            engine.submit(_samples(1)[0])
        assert issubclass(EngineClosed, RuntimeError)  # legacy callers catch this


class TestErrorPathFutures:
    """Satellite: a forward error rejects exactly the affected group, typed."""

    class PoisonSensitive(nn.module.Module):
        def forward(self, x):
            data = np.asarray(x.data)
            if np.any(data > 100.0):
                raise ValueError("poison pill in batch")
            return Tensor(data * 1.0)

    def test_only_the_poisoned_group_fails(self):
        # different shapes never co-batch: the poison can only sink its own group
        poison = np.full((4,), 200.0, dtype=np.float32)
        healthy = _samples(3, shape=(8,))
        with ServingEngine(self.PoisonSensitive(), max_batch_size=4, max_wait_ms=20) as engine:
            bad = engine.submit(poison)
            good = [engine.submit(s) for s in healthy]
            with pytest.raises(ValueError, match="poison pill"):
                bad.result(timeout=10)
            for sample, future in zip(healthy, good):
                np.testing.assert_array_equal(future.result(timeout=10), sample)
            # the engine is still healthy after delivering the error
            out = engine.serve(np.zeros(5, dtype=np.float32), timeout=10)
            np.testing.assert_array_equal(out, np.zeros(5, dtype=np.float32))
            assert engine.stats["failed_requests"] == 1

    def test_failed_future_carries_original_traceback(self):
        with ServingEngine(self.PoisonSensitive(), max_wait_ms=1) as engine:
            future = engine.submit(np.full((4,), 200.0, dtype=np.float32))
            exc = future.exception(timeout=10)
        assert isinstance(exc, ValueError)
        assert exc.__traceback__ is not None


class TestGenerationFaults:
    def test_tick_crash_fails_future_typed_then_driver_recovers(self):
        model = small_lm()
        prompt = np.array([1, 2, 3])
        ref = model.generate(prompt, max_new_tokens=6)
        with injected({"generation.tick": FaultSpec(kind="crash", on_calls={1}, max_fires=1)}):
            with ServingEngine(model, plan_cache=False) as engine:
                future = engine.generate(prompt, GenerationRequest(max_new_tokens=6))
                with pytest.raises(WorkerCrashed, match="tick thread died") as info:
                    future.result(timeout=30)
                assert isinstance(info.value.__cause__, InjectedCrash)
                # a fresh driver replaces the dead letterbox (fault is spent)
                out = engine.generate(prompt, GenerationRequest(max_new_tokens=6)).result(
                    timeout=60
                )
        np.testing.assert_array_equal(out, ref)

    def test_tick_crash_terminates_stream_with_error(self):
        model = small_lm()
        with injected({"generation.tick": FaultSpec(kind="crash", on_calls={1}, max_fires=1)}):
            with ServingEngine(model, plan_cache=False) as engine:
                stream = engine.generate(
                    np.array([1, 2]), GenerationRequest(max_new_tokens=8, stream=True)
                )
                with pytest.raises(WorkerCrashed):
                    list(stream)  # terminates with the typed error, never hangs

    def test_tick_error_fails_group_but_not_the_driver(self):
        model = small_lm()
        prompt = np.array([4, 5])
        ref = model.generate(prompt, max_new_tokens=5)
        with injected({"generation.tick": FaultSpec(kind="error", on_calls={1}, max_fires=1)}):
            with ServingEngine(model, plan_cache=False) as engine:
                future = engine.generate(prompt, GenerationRequest(max_new_tokens=5))
                with pytest.raises(InjectedError):
                    future.result(timeout=30)
                # an ordinary tick error is isolated: the driver thread survives
                out = engine.generate(prompt, GenerationRequest(max_new_tokens=5)).result(
                    timeout=60
                )
                stats = engine.stats["generation"]
        np.testing.assert_array_equal(out, ref)
        assert stats["tick_failures"] == 1


class TestPrefetchFaults:
    def test_block_prefetch_error_is_typed_and_chained(self):
        x = np.random.default_rng(0).normal(0, 1, (64, 16)).astype(np.float32)
        wq = QuantizedTensor.quantize(x, E4M3, axis=0)
        with injected({"prefetch.decode": FaultSpec(kind="error", on_calls={2}, max_fires=1)}):
            prefetcher = BlockPrefetcher(wq, block_channels=16)
            with pytest.raises(PrefetchError, match="prefetch worker failed") as info:
                list(prefetcher)
        assert isinstance(info.value.__cause__, InjectedError)
        assert isinstance(info.value, ServingError)
        # a clean pass afterwards decodes bit-identically
        blocks = list(BlockPrefetcher(wq, block_channels=16))
        for start, stop, block in blocks:
            np.testing.assert_array_equal(block, wq.dequantize_block(start, stop, axis=0))
