"""ServingEngine: continuous batching, multi-worker execution, padding, lifecycle."""

import threading
import time

import numpy as np
import pytest

import repro.nn as nn
from repro.autograd.tensor import Tensor, no_grad
from repro.nn.module import Module
from repro.quantization import Approach, quantize_model, standard_recipe
from repro.serving import DeadlineExceeded, ServingEngine


class SlowIdentity(Module):
    """Returns its input unchanged after ``delay_s`` (records batch shapes)."""

    def __init__(self, delay_s: float = 0.05) -> None:
        super().__init__()
        self.delay_s = delay_s
        self.seen_shapes = []

    def forward(self, x):
        self.seen_shapes.append(np.asarray(x.data).shape)
        time.sleep(self.delay_s)
        return Tensor(np.asarray(x.data) * 1.0)


def _mlp(seed=0):
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Linear(16, 32, rng=rng),
        nn.ReLU(),
        nn.Linear(32, 8, rng=rng),
    ).eval()


def _samples(count, shape=(16,), seed=1):
    rng = np.random.default_rng(seed)
    return [rng.normal(0, 1, shape).astype(np.float32) for _ in range(count)]


class TestBatching:
    def test_results_match_direct_forward(self):
        model = _mlp()
        samples = _samples(6)
        with no_grad():
            expected = model(Tensor(np.stack(samples))).data
        with ServingEngine(model, max_batch_size=6, max_wait_ms=50) as engine:
            outputs = engine.serve_batch(samples)
        for out, exp in zip(outputs, expected):
            assert np.allclose(out, exp, rtol=1e-5, atol=1e-6)

    def test_requests_are_fused_into_batches(self):
        model = _mlp()
        with ServingEngine(model, max_batch_size=8, max_wait_ms=100) as engine:
            engine.serve_batch(_samples(8))
            stats = engine.stats
        assert stats["requests"] == 8
        assert stats["batches"] < 8  # at least some fusion happened
        assert stats["max_batch"] > 1

    def test_streaming_quantized_model_served(self):
        result = quantize_model(
            _mlp(),
            standard_recipe("E4M3", approach=Approach.DYNAMIC),
            deploy=True,
            serving_mode="streaming",
        )
        samples = _samples(4)
        with no_grad():
            expected = result.model(Tensor(np.stack(samples))).data
        with ServingEngine(result.model, max_batch_size=4, max_wait_ms=100) as engine:
            outputs = engine.serve_batch(samples)
        # one fused forward sees the same batch statistics -> bit-identical
        # is not guaranteed across groupings, but the fused group matches
        for out, exp in zip(outputs, expected):
            assert np.allclose(out, exp, rtol=1e-4, atol=1e-5)

    def test_single_request_serve(self):
        model = _mlp()
        sample = _samples(1)[0]
        with no_grad():
            expected = model(Tensor(sample[None])).data[0]
        with ServingEngine(model, max_wait_ms=1) as engine:
            out = engine.serve(sample, timeout=10)
        assert np.allclose(out, expected, rtol=1e-5, atol=1e-6)


class TestPaddingAndGrouping:
    def test_variable_length_sequences_padded_and_sliced(self):
        model = _mlp()
        rng = np.random.default_rng(5)
        seqs = [rng.normal(0, 1, (length, 16)).astype(np.float32) for length in (3, 5, 2, 5)]
        with no_grad():
            expected = [model(Tensor(seq[None])).data[0] for seq in seqs]
        with ServingEngine(model, max_batch_size=4, max_wait_ms=100, pad_value=0.0) as engine:
            outputs = engine.serve_batch(seqs)
            stats = engine.stats
        for out, exp, seq in zip(outputs, expected, seqs):
            assert out.shape == (seq.shape[0], 8)
            assert np.allclose(out, exp, rtol=1e-5, atol=1e-6)
        assert stats["padded_requests"] > 0

    def test_incompatible_shapes_grouped_separately(self):
        model = _mlp()
        vec = _samples(2)  # rank-1: exact-shape group
        seq = [np.random.default_rng(6).normal(0, 1, (4, 16)).astype(np.float32)]
        with ServingEngine(model, max_batch_size=8, max_wait_ms=100) as engine:
            outputs = engine.serve_batch(vec + seq)
        assert outputs[0].shape == (8,)
        assert outputs[2].shape == (4, 8)

    def test_mismatched_rank1_shapes_never_stacked(self):
        model = _mlp()
        good = _samples(1)[0]
        bad = np.zeros(7, dtype=np.float32)  # wrong feature count
        with ServingEngine(model, max_batch_size=2, max_wait_ms=100) as engine:
            good_future = engine.submit(good)
            bad_future = engine.submit(bad)
            assert good_future.result(timeout=10).shape == (8,)
            with pytest.raises(Exception):
                bad_future.result(timeout=10)


class TestLifecycle:
    def test_close_serves_pending_then_rejects(self):
        model = _mlp()
        engine = ServingEngine(model, max_batch_size=4, max_wait_ms=500)
        futures = [engine.submit(sample) for sample in _samples(4)]
        engine.close()
        for future in futures:
            assert future.result(timeout=10).shape == (8,)
        with pytest.raises(RuntimeError, match="closed"):
            engine.submit(_samples(1)[0])

    def test_close_is_idempotent(self):
        engine = ServingEngine(_mlp())
        engine.close()
        engine.close()

    def test_forward_error_lands_on_futures_not_driver(self):
        class Exploding(Module):
            def forward(self, x):
                raise RuntimeError("forward exploded")

        engine = ServingEngine(Exploding(), max_wait_ms=1)
        future = engine.submit(np.zeros(4, dtype=np.float32))
        with pytest.raises(RuntimeError, match="forward exploded"):
            future.result(timeout=10)
        # the worker thread must survive the failure and keep serving
        assert engine.alive_workers == 1
        assert engine.stats["failed_requests"] == 1
        engine.close()

    def test_concurrent_submitters(self):
        model = _mlp()
        samples = _samples(24, seed=9)
        with no_grad():
            expected = [model(Tensor(sample[None])).data[0] for sample in samples]
        results = [None] * len(samples)
        with ServingEngine(model, max_batch_size=8, max_wait_ms=20) as engine:

            def _client(index):
                results[index] = engine.serve(samples[index], timeout=30)

            threads = [
                threading.Thread(target=_client, args=(index,)) for index in range(len(samples))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
        for out, exp in zip(results, expected):
            assert np.allclose(out, exp, rtol=1e-5, atol=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            ServingEngine(_mlp(), max_batch_size=0)
        with pytest.raises(ValueError, match="max_wait_ms"):
            ServingEngine(_mlp(), max_wait_ms=-1)


class TestReviewRegressions:
    def test_cancelled_future_does_not_kill_driver(self):
        model = _mlp()
        with ServingEngine(model, max_batch_size=2, max_wait_ms=200) as engine:
            doomed = engine.submit(_samples(1)[0])
            assert doomed.cancel()
            survivor = engine.submit(_samples(1, seed=2)[0])
            # the cancelled request is skipped; its batch-mate still resolves
            assert survivor.result(timeout=10).shape == (8,)
            assert engine.alive_workers == 1
            assert doomed.cancelled()

    def test_sequence_reducing_model_unsliced_when_declared(self):
        class MeanPool(Module):
            def forward(self, x):
                return Tensor(x.data.mean(axis=1))  # (B, T, F) -> (B, F)

        rng = np.random.default_rng(8)
        # padded length 8 == feature width 8: the shape coincidence that a
        # runtime guess would silently truncate on
        seqs = [rng.normal(0, 1, (n, 8)).astype(np.float32) for n in (5, 8)]
        with ServingEngine(
            MeanPool(), max_batch_size=2, max_wait_ms=100, slice_padded_outputs=False
        ) as engine:
            outputs = engine.serve_batch(seqs)
        assert outputs[0].shape == (8,)
        assert outputs[1].shape == (8,)

    def test_sequence_reducing_model_fails_loudly_when_undeclared(self):
        class MeanPool(Module):
            def forward(self, x):
                return Tensor(x.data.mean(axis=1))  # leading axis reduced away

        rng = np.random.default_rng(8)
        seqs = [rng.normal(0, 1, (n, 16)).astype(np.float32) for n in (3, 6)]
        engine = ServingEngine(MeanPool(), max_batch_size=2, max_wait_ms=100)
        futures = [engine.submit(seq) for seq in seqs]
        for future in futures:
            with pytest.raises(RuntimeError, match="slice_padded_outputs"):
                future.result(timeout=10)
        engine.close()

    def test_no_grad_is_thread_local(self):
        from repro.autograd.tensor import is_grad_enabled

        seen = {}
        release = threading.Event()
        entered = threading.Event()

        def _background():
            with no_grad():
                entered.set()
                release.wait(timeout=10)
            seen["after_exit"] = is_grad_enabled()

        worker = threading.Thread(target=_background)
        worker.start()
        assert entered.wait(timeout=10)
        # the worker holding no_grad must not leak into this thread...
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()
        release.set()
        worker.join(timeout=10)
        # ...and the worker restores its own (enabled) state on exit
        assert seen["after_exit"] is True


def _streaming_quantized(seed=0):
    result = quantize_model(
        _mlp(seed=seed),
        standard_recipe("E4M3", approach=Approach.DYNAMIC),
        deploy=True,
        serving_mode="streaming",
    )
    return result.model


class TestContinuousBatching:
    def test_arrivals_during_forward_join_next_group(self):
        """No drain barrier: requests landing mid-forward form the next group."""
        model = SlowIdentity(delay_s=0.08)
        with ServingEngine(model, max_batch_size=4, max_wait_ms=5) as engine:
            first = engine.submit(np.zeros(6, dtype=np.float32))
            time.sleep(0.03)  # the worker is now inside first's forward
            late = [engine.submit(np.zeros(6, dtype=np.float32)) for _ in range(3)]
            first.result(timeout=10)
            for future in late:
                future.result(timeout=10)
            stats = engine.stats
        # the three late arrivals were admitted into one follow-up group
        # instead of one forward each after a drain
        assert stats["batches"] == 2
        assert stats["max_batch"] == 3
        assert model.seen_shapes == [(1, 6), (3, 6)]

    def test_incompatible_shapes_never_co_batch_under_staggered_arrivals(self):
        model = SlowIdentity(delay_s=0.02)
        with ServingEngine(model, max_batch_size=8, max_wait_ms=40) as engine:
            futures = []
            for index in range(8):
                shape = (6,) if index % 2 == 0 else (3, 6)
                futures.append(engine.submit(np.zeros(shape, dtype=np.float32)))
                time.sleep(0.004)
            for future in futures:
                future.result(timeout=10)
        # every forward saw either stacked vectors (rank 2) or stacked
        # sequences (rank 3), never a mix
        assert model.seen_shapes
        for shape in model.seen_shapes:
            assert len(shape) in (2, 3)
            assert shape[-1] == 6

    def test_tight_deadline_closes_admission_window_early(self):
        model = SlowIdentity(delay_s=0.0)
        with ServingEngine(model, max_batch_size=8, max_wait_ms=500) as engine:
            t0 = time.monotonic()
            out = engine.serve(np.zeros(4, dtype=np.float32), timeout=10, deadline_ms=40)
            elapsed = time.monotonic() - t0
        assert out.shape == (4,)
        # served around the 40ms deadline, not after the 500ms window
        assert elapsed < 0.3

    def test_queued_request_past_deadline_fails(self):
        model = SlowIdentity(delay_s=0.12)
        engine = ServingEngine(model, max_batch_size=2, max_wait_ms=1)
        blocker = engine.submit(np.zeros(4, dtype=np.float32))
        time.sleep(0.03)  # worker is busy with the blocker's forward
        doomed = engine.submit(np.zeros(4, dtype=np.float32), deadline_ms=10)
        with pytest.raises(DeadlineExceeded):
            doomed.result(timeout=10)
        assert blocker.result(timeout=10).shape == (4,)
        stats = engine.stats
        assert stats["expired_requests"] == 1
        assert engine.alive_workers == 1
        engine.close()

    def test_priority_orders_ready_groups(self):
        model = SlowIdentity(delay_s=0.08)
        done_order = []
        with ServingEngine(model, max_batch_size=2, max_wait_ms=1) as engine:
            blocker = engine.submit(np.zeros(4, dtype=np.float32))
            time.sleep(0.03)  # both later requests queue while the worker is busy
            low = engine.submit(np.zeros(6, dtype=np.float32), priority=0)
            high = engine.submit(np.zeros((2, 6), dtype=np.float32), priority=5)
            low.add_done_callback(lambda f: done_order.append("low"))
            high.add_done_callback(lambda f: done_order.append("high"))
            blocker.result(timeout=10)
            low.result(timeout=10)
            high.result(timeout=10)
        assert done_order[0] == "high"

    def test_non_positive_deadline_rejected(self):
        # zero is rejected too: a zero budget can never be met, so accepting
        # it would guarantee DeadlineExceeded
        with ServingEngine(SlowIdentity(0.0), max_wait_ms=1) as engine:
            with pytest.raises(ValueError, match="deadline_ms"):
                engine.submit(np.zeros(3, dtype=np.float32), deadline_ms=-1)
            with pytest.raises(ValueError, match="deadline_ms"):
                engine.submit(np.zeros(3, dtype=np.float32), deadline_ms=0)


class TestMultiWorker:
    def test_worker_replica_validation(self):
        with pytest.raises(ValueError, match="workers"):
            ServingEngine(_mlp(), workers=0)
        with pytest.raises(ValueError, match="replicas"):
            ServingEngine([_mlp(), _mlp()], workers=3)
        with pytest.raises(TypeError, match="Module"):
            ServingEngine([])

    def test_workers_default_to_replica_count(self):
        engine = ServingEngine([_mlp(), _mlp()], max_wait_ms=1)
        assert engine.workers == 2
        assert engine.alive_workers == 2
        engine.close()
        assert engine.alive_workers == 0

    def test_multi_worker_bit_identical_to_single_worker(self):
        """Deterministic chunking => identical groups => bit-identical outputs.

        max_wait is long and max_batch small, so groups are always the next
        four arrivals in order no matter how many workers pop them — dynamic
        activation scales then see identical batches in both runs.
        """
        samples = _samples(16, seed=21)
        outputs = {}
        for workers in (1, 4):
            model = _streaming_quantized(seed=3)
            with ServingEngine(
                model, max_batch_size=4, max_wait_ms=2000, workers=workers
            ) as engine:
                outputs[workers] = engine.serve_batch(samples, timeout=30)
        for single, multi in zip(outputs[1], outputs[4]):
            assert np.array_equal(single, multi)

    def test_shared_model_across_workers_serves_correctly(self):
        model = _streaming_quantized(seed=5)
        samples = _samples(12, seed=22)
        with no_grad():
            expected = model(Tensor(np.stack(samples[:4]))).data
        with ServingEngine(model, max_batch_size=4, max_wait_ms=2000, workers=3) as engine:
            outputs = engine.serve_batch(samples, timeout=30)
        assert engine.alive_workers == 0
        for out, exp in zip(outputs[:4], expected):
            assert np.array_equal(out, exp)


class TestObservability:
    def test_stats_percentiles_and_occupancy(self):
        model = SlowIdentity(delay_s=0.01)
        with ServingEngine(model, max_batch_size=4, max_wait_ms=10) as engine:
            engine.serve_batch(_samples(8), timeout=10)
            stats = engine.stats
        for key in (
            "queue_wait_p50_ms",
            "queue_wait_p95_ms",
            "forward_p50_ms",
            "forward_p95_ms",
        ):
            assert stats[key] >= 0.0
        assert stats["queue_wait_p95_ms"] >= stats["queue_wait_p50_ms"]
        assert stats["forward_p95_ms"] >= stats["forward_p50_ms"]
        # forwards sleep 10ms, so the measured forward latency must see it
        assert stats["forward_p50_ms"] >= 8.0
        assert 0.0 < stats["occupancy_mean"] <= 1.0
        assert stats["workers"] == 1
        assert stats["pending"] == 0

    def test_serve_batch_timeout_is_a_shared_deadline(self):
        """Total wait is bounded by timeout, not timeout * len(samples)."""
        model = SlowIdentity(delay_s=0.15)
        engine = ServingEngine(model, max_batch_size=1, max_wait_ms=1)
        t0 = time.monotonic()
        with pytest.raises(TimeoutError):
            # three incompatible singleton groups => ~0.45s of forwards; the
            # old per-future accounting would have allowed ~0.36s of waiting
            engine.serve_batch(
                [np.zeros(4, dtype=np.float32), np.zeros(6, dtype=np.float32),
                 np.zeros(8, dtype=np.float32)],
                timeout=0.12,
            )
        elapsed = time.monotonic() - t0
        assert elapsed < 0.3
        engine.close()
