"""ServingEngine: batching, padding, grouping, lifecycle, failure paths."""

import threading

import numpy as np
import pytest

import repro.nn as nn
from repro.autograd.tensor import Tensor, no_grad
from repro.nn.module import Module
from repro.quantization import Approach, quantize_model, standard_recipe
from repro.serving import ServingEngine


def _mlp(seed=0):
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Linear(16, 32, rng=rng),
        nn.ReLU(),
        nn.Linear(32, 8, rng=rng),
    ).eval()


def _samples(count, shape=(16,), seed=1):
    rng = np.random.default_rng(seed)
    return [rng.normal(0, 1, shape).astype(np.float32) for _ in range(count)]


class TestBatching:
    def test_results_match_direct_forward(self):
        model = _mlp()
        samples = _samples(6)
        with no_grad():
            expected = model(Tensor(np.stack(samples))).data
        with ServingEngine(model, max_batch_size=6, max_wait_ms=50) as engine:
            outputs = engine.serve_batch(samples)
        for out, exp in zip(outputs, expected):
            assert np.allclose(out, exp, rtol=1e-5, atol=1e-6)

    def test_requests_are_fused_into_batches(self):
        model = _mlp()
        with ServingEngine(model, max_batch_size=8, max_wait_ms=100) as engine:
            engine.serve_batch(_samples(8))
            stats = engine.stats
        assert stats["requests"] == 8
        assert stats["batches"] < 8  # at least some fusion happened
        assert stats["max_batch"] > 1

    def test_streaming_quantized_model_served(self):
        result = quantize_model(
            _mlp(),
            standard_recipe("E4M3", approach=Approach.DYNAMIC),
            deploy=True,
            serving_mode="streaming",
        )
        samples = _samples(4)
        with no_grad():
            expected = result.model(Tensor(np.stack(samples))).data
        with ServingEngine(result.model, max_batch_size=4, max_wait_ms=100) as engine:
            outputs = engine.serve_batch(samples)
        # one fused forward sees the same batch statistics -> bit-identical
        # is not guaranteed across groupings, but the fused group matches
        for out, exp in zip(outputs, expected):
            assert np.allclose(out, exp, rtol=1e-4, atol=1e-5)

    def test_single_request_serve(self):
        model = _mlp()
        sample = _samples(1)[0]
        with no_grad():
            expected = model(Tensor(sample[None])).data[0]
        with ServingEngine(model, max_wait_ms=1) as engine:
            out = engine.serve(sample, timeout=10)
        assert np.allclose(out, expected, rtol=1e-5, atol=1e-6)


class TestPaddingAndGrouping:
    def test_variable_length_sequences_padded_and_sliced(self):
        model = _mlp()
        rng = np.random.default_rng(5)
        seqs = [
            rng.normal(0, 1, (length, 16)).astype(np.float32) for length in (3, 5, 2, 5)
        ]
        with no_grad():
            expected = [model(Tensor(seq[None])).data[0] for seq in seqs]
        with ServingEngine(model, max_batch_size=4, max_wait_ms=100, pad_value=0.0) as engine:
            outputs = engine.serve_batch(seqs)
            stats = engine.stats
        for out, exp, seq in zip(outputs, expected, seqs):
            assert out.shape == (seq.shape[0], 8)
            assert np.allclose(out, exp, rtol=1e-5, atol=1e-6)
        assert stats["padded_requests"] > 0

    def test_incompatible_shapes_grouped_separately(self):
        model = _mlp()
        vec = _samples(2)  # rank-1: exact-shape group
        seq = [np.random.default_rng(6).normal(0, 1, (4, 16)).astype(np.float32)]
        with ServingEngine(model, max_batch_size=8, max_wait_ms=100) as engine:
            outputs = engine.serve_batch(vec + seq)
        assert outputs[0].shape == (8,)
        assert outputs[2].shape == (4, 8)

    def test_mismatched_rank1_shapes_never_stacked(self):
        model = _mlp()
        good = _samples(1)[0]
        bad = np.zeros(7, dtype=np.float32)  # wrong feature count
        with ServingEngine(model, max_batch_size=2, max_wait_ms=100) as engine:
            good_future = engine.submit(good)
            bad_future = engine.submit(bad)
            assert good_future.result(timeout=10).shape == (8,)
            with pytest.raises(Exception):
                bad_future.result(timeout=10)


class TestLifecycle:
    def test_close_serves_pending_then_rejects(self):
        model = _mlp()
        engine = ServingEngine(model, max_batch_size=4, max_wait_ms=500)
        futures = [engine.submit(sample) for sample in _samples(4)]
        engine.close()
        for future in futures:
            assert future.result(timeout=10).shape == (8,)
        with pytest.raises(RuntimeError, match="closed"):
            engine.submit(_samples(1)[0])

    def test_close_is_idempotent(self):
        engine = ServingEngine(_mlp())
        engine.close()
        engine.close()

    def test_forward_error_lands_on_futures_not_driver(self):
        class Exploding(Module):
            def forward(self, x):
                raise RuntimeError("forward exploded")

        engine = ServingEngine(Exploding(), max_wait_ms=1)
        future = engine.submit(np.zeros(4, dtype=np.float32))
        with pytest.raises(RuntimeError, match="forward exploded"):
            future.result(timeout=10)
        # the driver thread must survive the failure and keep serving
        assert engine._driver.is_alive()
        assert engine.stats["failed_requests"] == 1
        engine.close()

    def test_concurrent_submitters(self):
        model = _mlp()
        samples = _samples(24, seed=9)
        with no_grad():
            expected = [model(Tensor(sample[None])).data[0] for sample in samples]
        results = [None] * len(samples)
        with ServingEngine(model, max_batch_size=8, max_wait_ms=20) as engine:

            def _client(index):
                results[index] = engine.serve(samples[index], timeout=30)

            threads = [
                threading.Thread(target=_client, args=(index,)) for index in range(len(samples))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
        for out, exp in zip(results, expected):
            assert np.allclose(out, exp, rtol=1e-5, atol=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            ServingEngine(_mlp(), max_batch_size=0)
        with pytest.raises(ValueError, match="max_wait_ms"):
            ServingEngine(_mlp(), max_wait_ms=-1)


class TestReviewRegressions:
    def test_cancelled_future_does_not_kill_driver(self):
        model = _mlp()
        with ServingEngine(model, max_batch_size=2, max_wait_ms=200) as engine:
            doomed = engine.submit(_samples(1)[0])
            assert doomed.cancel()
            survivor = engine.submit(_samples(1, seed=2)[0])
            # the cancelled request is skipped; its batch-mate still resolves
            assert survivor.result(timeout=10).shape == (8,)
            assert engine._driver.is_alive()
            assert doomed.cancelled()

    def test_sequence_reducing_model_unsliced_when_declared(self):
        class MeanPool(Module):
            def forward(self, x):
                return Tensor(x.data.mean(axis=1))  # (B, T, F) -> (B, F)

        rng = np.random.default_rng(8)
        # padded length 8 == feature width 8: the shape coincidence that a
        # runtime guess would silently truncate on
        seqs = [rng.normal(0, 1, (n, 8)).astype(np.float32) for n in (5, 8)]
        with ServingEngine(
            MeanPool(), max_batch_size=2, max_wait_ms=100, slice_padded_outputs=False
        ) as engine:
            outputs = engine.serve_batch(seqs)
        assert outputs[0].shape == (8,)
        assert outputs[1].shape == (8,)

    def test_sequence_reducing_model_fails_loudly_when_undeclared(self):
        class MeanPool(Module):
            def forward(self, x):
                return Tensor(x.data.mean(axis=1))  # leading axis reduced away

        rng = np.random.default_rng(8)
        seqs = [rng.normal(0, 1, (n, 16)).astype(np.float32) for n in (3, 6)]
        engine = ServingEngine(MeanPool(), max_batch_size=2, max_wait_ms=100)
        futures = [engine.submit(seq) for seq in seqs]
        for future in futures:
            with pytest.raises(RuntimeError, match="slice_padded_outputs"):
                future.result(timeout=10)
        engine.close()

    def test_no_grad_is_thread_local(self):
        from repro.autograd.tensor import is_grad_enabled

        seen = {}
        release = threading.Event()
        entered = threading.Event()

        def _background():
            with no_grad():
                entered.set()
                release.wait(timeout=10)
            seen["after_exit"] = is_grad_enabled()

        worker = threading.Thread(target=_background)
        worker.start()
        assert entered.wait(timeout=10)
        # the worker holding no_grad must not leak into this thread...
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()
        release.set()
        worker.join(timeout=10)
        # ...and the worker restores its own (enabled) state on exit
        assert seen["after_exit"] is True
