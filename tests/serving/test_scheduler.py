"""ContinuousScheduler: bucket admission, urgency ordering, windows, deadlines."""

import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.serving.scheduler import (
    ContinuousScheduler,
    DeadlineExceeded,
    Request,
    compat_key,
)

_ORDER = iter(range(10_000))


def _request(shape=(4,), priority=0, deadline=None):
    sample = np.zeros(shape, dtype=np.float32)
    return Request(
        sample,
        Future(),
        priority=priority,
        deadline=deadline,
        order=next(_ORDER),
    )


class TestCompatKey:
    def test_rank1_exact(self):
        assert compat_key(np.zeros(4, dtype=np.float32)) == compat_key(
            np.zeros(4, dtype=np.float32)
        )
        assert compat_key(np.zeros(4, dtype=np.float32)) != compat_key(
            np.zeros(5, dtype=np.float32)
        )

    def test_rank2_groups_by_trailing_dims(self):
        assert compat_key(np.zeros((3, 4), dtype=np.float32)) == compat_key(
            np.zeros((7, 4), dtype=np.float32)
        )
        assert compat_key(np.zeros((3, 4), dtype=np.float32)) != compat_key(
            np.zeros((3, 5), dtype=np.float32)
        )


class TestGrouping:
    def test_same_key_batched_up_to_max(self):
        scheduler = ContinuousScheduler(max_batch_size=4, max_wait_s=0.0)
        requests = [_request() for _ in range(5)]
        for request in requests:
            scheduler.add(request)
        first = scheduler.next_group()
        second = scheduler.next_group()
        assert [r.order for r in first] == [r.order for r in requests[:4]]
        assert [r.order for r in second] == [requests[4].order]

    def test_incompatible_keys_never_grouped(self):
        scheduler = ContinuousScheduler(max_batch_size=8, max_wait_s=0.0)
        scheduler.add(_request(shape=(4,)))
        scheduler.add(_request(shape=(6,)))
        groups = [scheduler.next_group(), scheduler.next_group()]
        assert all(len(group) == 1 for group in groups)
        assert groups[0][0].key != groups[1][0].key

    def test_full_bucket_ready_before_window(self):
        scheduler = ContinuousScheduler(max_batch_size=3, max_wait_s=10.0)
        for _ in range(3):
            scheduler.add(_request())
        t0 = time.monotonic()
        group = scheduler.next_group()
        assert len(group) == 3
        assert time.monotonic() - t0 < 1.0

    def test_window_waits_for_coriders(self):
        scheduler = ContinuousScheduler(max_batch_size=4, max_wait_s=0.05)
        scheduler.add(_request())
        t0 = time.monotonic()
        group = scheduler.next_group()
        elapsed = time.monotonic() - t0
        assert len(group) == 1
        assert elapsed >= 0.04

    def test_leftover_requests_keep_their_elapsed_wait(self):
        """A request bumped past max_batch must not restart a full window."""
        scheduler = ContinuousScheduler(max_batch_size=8, max_wait_s=0.2)
        for _ in range(9):
            scheduler.add(_request())
        time.sleep(0.25)  # every request's window has now expired
        assert len(scheduler.next_group()) == 8
        t0 = time.monotonic()
        leftover = scheduler.next_group()
        # the leftover's window stays anchored to its own (expired) arrival,
        # so it is served immediately — not after another 200ms wait
        assert len(leftover) == 1
        assert time.monotonic() - t0 < 0.1

    def test_pending(self):
        scheduler = ContinuousScheduler(max_batch_size=4, max_wait_s=0.0)
        assert scheduler.pending() == 0
        scheduler.add(_request())
        assert scheduler.pending() == 1
        scheduler.next_group()
        assert scheduler.pending() == 0


class TestUrgency:
    def test_priority_orders_buckets(self):
        scheduler = ContinuousScheduler(max_batch_size=2, max_wait_s=0.0)
        low = _request(shape=(4,), priority=0)
        high = _request(shape=(6,), priority=5)
        scheduler.add(low)
        scheduler.add(high)
        assert scheduler.next_group()[0] is high
        assert scheduler.next_group()[0] is low

    def test_deadline_orders_within_bucket(self):
        now = time.monotonic()
        scheduler = ContinuousScheduler(max_batch_size=2, max_wait_s=0.0)
        no_deadline = _request()
        far = _request(deadline=now + 100.0)
        near = _request(deadline=now + 50.0)
        for request in (no_deadline, far, near):
            scheduler.add(request)
        first = scheduler.next_group()
        assert [r is near or r is far for r in first] == [True, True]
        assert first[0] is near
        assert scheduler.next_group() == [no_deadline]

    def test_deadline_closes_window_early(self):
        scheduler = ContinuousScheduler(max_batch_size=8, max_wait_s=5.0)
        request = _request(deadline=time.monotonic() + 0.05)
        scheduler.add(request)
        t0 = time.monotonic()
        group = scheduler.next_group()
        elapsed = time.monotonic() - t0
        assert group == [request]
        assert elapsed < 1.0  # nowhere near the 5s window

    def test_expired_request_fails_with_deadline_exceeded(self):
        expired_counts = []
        scheduler = ContinuousScheduler(
            max_batch_size=4, max_wait_s=0.0, on_expired=expired_counts.append
        )
        stale = _request(deadline=time.monotonic() - 0.01)
        alive = _request()
        scheduler.add(stale)
        scheduler.add(alive)
        group = scheduler.next_group()
        assert group == [alive]
        with pytest.raises(DeadlineExceeded):
            stale.future.result(timeout=1)
        assert expired_counts == [1]

    def test_cancelled_future_not_resurrected_by_expiry(self):
        scheduler = ContinuousScheduler(max_batch_size=4, max_wait_s=0.0)
        stale = _request(deadline=time.monotonic() - 0.01)
        stale.future.cancel()
        scheduler.add(stale)
        scheduler.add(_request())
        scheduler.next_group()
        assert stale.future.cancelled()


class TestClose:
    def test_close_drains_then_returns_none(self):
        scheduler = ContinuousScheduler(max_batch_size=2, max_wait_s=60.0)
        requests = [_request() for _ in range(3)]
        for request in requests:
            scheduler.add(request)
        scheduler.close()
        assert len(scheduler.next_group()) == 2
        assert len(scheduler.next_group()) == 1
        assert scheduler.next_group() is None
        assert scheduler.next_group() is None

    def test_add_after_close_raises(self):
        scheduler = ContinuousScheduler(max_batch_size=2, max_wait_s=0.0)
        scheduler.close()
        with pytest.raises(RuntimeError, match="closed"):
            scheduler.add(_request())

    def test_validation(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            ContinuousScheduler(max_batch_size=0, max_wait_s=0.0)
        with pytest.raises(ValueError, match="max_wait_s"):
            ContinuousScheduler(max_batch_size=1, max_wait_s=-1.0)
