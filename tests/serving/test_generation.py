"""Generation serving: typed request API, token-level batching, preemption.

The engine's generation tier must reproduce ``model.generate`` token for
token while decode steps of many requests share each forward — under
mid-decode admission, preemption/restore, streaming delivery, and both
KV-cache storages.  The deprecation shims keep every pre-existing
``submit``/``serve``/``serve_batch`` call site working, warning once.
"""

import time
import warnings

import numpy as np
import pytest

import repro.nn as nn
import repro.serving.api as serving_api
from repro.models.transformer import GPTStyleLM
from repro.serving import (
    DeadlineExceeded,
    GenerationRequest,
    GenerationStream,
    ServingEngine,
    SubmitOptions,
    TokenScheduler,
)


def small_lm(seed=0, max_seq_len=64):
    model = GPTStyleLM(
        vocab_size=32, max_seq_len=max_seq_len, embed_dim=32, num_heads=4, num_layers=2, rng=seed
    )
    return model.eval()


class SlowStepLM(GPTStyleLM):
    """Throttled decode steps so admission/preemption races are deterministic."""

    def __init__(self, *args, step_delay_s=0.01, **kwargs):
        super().__init__(*args, **kwargs)
        self.step_delay_s = step_delay_s

    def forward_step(self, *args, **kwargs):
        time.sleep(self.step_delay_s)
        return super().forward_step(*args, **kwargs)


def slow_lm(seed=0, max_seq_len=64, step_delay_s=0.01):
    model = SlowStepLM(
        vocab_size=32,
        max_seq_len=max_seq_len,
        embed_dim=32,
        num_heads=4,
        num_layers=2,
        rng=seed,
        step_delay_s=step_delay_s,
    )
    return model.eval()


@pytest.fixture
def fresh_warnings(monkeypatch):
    """Reset the warn-once registry so each test observes its own warning."""
    monkeypatch.setattr(serving_api, "_WARNED", set())


class TestRequestDataclasses:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_new_tokens"):
            GenerationRequest(max_new_tokens=0).validated()
        with pytest.raises(ValueError, match="beam_size"):
            GenerationRequest(beam_size=0).validated()
        with pytest.raises(ValueError, match="stream"):
            GenerationRequest(stream=True, beam_size=2).validated()
        with pytest.raises(ValueError, match="deadline_ms"):
            SubmitOptions(deadline_ms=0).validated()
        with pytest.raises(ValueError, match="kv_cache"):
            GenerationRequest(kv_cache="").validated()

    def test_options_plus_legacy_kwargs_is_an_error(self):
        engine = ServingEngine(small_lm(), plan_cache=False)
        try:
            with pytest.raises(TypeError, match="not both"):
                engine.submit(np.zeros((2,)), SubmitOptions(priority=1), priority=2)
        finally:
            engine.close()


class TestDeprecationShims:
    def test_legacy_kwargs_warn_once_per_method(self, fresh_warnings):
        model = nn.Sequential(nn.Linear(4, 4, rng=0)).eval()
        engine = ServingEngine(model, plan_cache=False)
        try:
            sample = np.zeros(4, dtype=np.float32)
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                engine.serve(sample, priority=1)
                engine.serve(sample, priority=2)
            shim_warnings = [w for w in caught if issubclass(w.category, DeprecationWarning)]
            assert len(shim_warnings) == 1
            assert "SubmitOptions" in str(shim_warnings[0].message)
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                engine.submit(sample, deadline_ms=5000).result(timeout=10)
                engine.serve_batch([sample, sample], priority=1)
            categories = [w.category for w in caught if w.category is DeprecationWarning]
            assert len(categories) == 2  # one for submit, one for serve_batch
        finally:
            engine.close()

    def test_typed_options_do_not_warn(self, fresh_warnings):
        model = nn.Sequential(nn.Linear(4, 4, rng=0)).eval()
        engine = ServingEngine(model, plan_cache=False)
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                engine.serve(np.zeros(4, dtype=np.float32), SubmitOptions(priority=3))
            assert not [w for w in caught if issubclass(w.category, DeprecationWarning)]
        finally:
            engine.close()

    def test_zero_deadline_still_rejected_through_shim(self, fresh_warnings):
        model = nn.Sequential(nn.Linear(4, 4, rng=0)).eval()
        engine = ServingEngine(model, plan_cache=False)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                with pytest.raises(ValueError, match="deadline_ms"):
                    engine.submit(np.zeros(4, dtype=np.float32), deadline_ms=0)
        finally:
            engine.close()


class TestEngineGeneration:
    def test_greedy_matches_model_generate(self):
        model = small_lm()
        prompts = [np.array([1, 2, 3]), np.array([7, 8]), np.array([4, 5, 6, 9])]
        refs = [model.generate(p, max_new_tokens=10) for p in prompts]
        with ServingEngine(model, plan_cache=False) as engine:
            futures = [
                engine.generate(p, GenerationRequest(max_new_tokens=10)) for p in prompts
            ]
            outputs = [f.result(timeout=60) for f in futures]
        for ref, out in zip(refs, outputs):
            np.testing.assert_array_equal(out, ref)

    def test_beam_matches_model_generate(self):
        model = small_lm(seed=3)
        prompt = np.array([2, 9, 4])
        ref = model.generate(prompt, max_new_tokens=8, beam_size=3)
        with ServingEngine(model, plan_cache=False) as engine:
            out = engine.generate(
                prompt, GenerationRequest(max_new_tokens=8, beam_size=3)
            ).result(timeout=60)
        np.testing.assert_array_equal(out, ref)

    def test_stream_yields_tokens_in_order(self):
        model = small_lm()
        prompt = np.array([1, 2, 3])
        ref = model.generate(prompt, max_new_tokens=8)
        with ServingEngine(model, plan_cache=False) as engine:
            stream = engine.generate(prompt, GenerationRequest(max_new_tokens=8, stream=True))
            assert isinstance(stream, GenerationStream)
            tokens = list(stream)
            np.testing.assert_array_equal(np.concatenate([prompt, tokens]), ref)
            np.testing.assert_array_equal(stream.result(timeout=10), ref)

    def test_eos_stops_engine_generation(self):
        model = small_lm()
        prompt = np.array([1, 2, 3])
        ref = model.generate(prompt, max_new_tokens=10)
        eos = int(ref[prompt.size + 2])
        model_stopped = model.generate(prompt, max_new_tokens=10, eos_token=eos)
        with ServingEngine(model, plan_cache=False) as engine:
            out = engine.generate(
                prompt, GenerationRequest(max_new_tokens=10, eos_token=eos)
            ).result(timeout=60)
        np.testing.assert_array_equal(out, model_stopped)

    def test_fp8_kv_cache_request(self):
        model = small_lm(seed=5)
        prompt = np.array([3, 1, 4])
        ref = model.generate(prompt, max_new_tokens=10, kv_cache="E4M3")
        with ServingEngine(model, plan_cache=False) as engine:
            out = engine.generate(
                prompt, GenerationRequest(max_new_tokens=10, kv_cache="E4M3")
            ).result(timeout=60)
            stats = engine.stats["generation"]
        np.testing.assert_array_equal(out, ref)
        assert stats["sequences"] == 1

    def test_mid_decode_admission(self):
        model = slow_lm()
        p1, p2 = np.array([1, 2, 3]), np.array([7, 8])
        ref1 = model.generate(p1, max_new_tokens=24)
        ref2 = model.generate(p2, max_new_tokens=6)
        with ServingEngine(model, plan_cache=False, decode_slots=8) as engine:
            f1 = engine.generate(p1, GenerationRequest(max_new_tokens=24))
            time.sleep(0.05)  # f1 is mid-decode when f2 arrives
            f2 = engine.generate(p2, GenerationRequest(max_new_tokens=6))
            np.testing.assert_array_equal(f1.result(timeout=120), ref1)
            np.testing.assert_array_equal(f2.result(timeout=120), ref2)
            stats = engine.stats["generation"]
        assert stats["sequences"] == 2
        assert stats["decode_steps"] >= 1 and stats["prefill_steps"] >= 1
        assert stats["generated_tokens"] == 30

    def test_preemption_restore_round_trip(self):
        model = slow_lm()
        p_low, p_high = np.array([1, 2, 3]), np.array([7, 8])
        ref_low = model.generate(p_low, max_new_tokens=24)
        ref_high = model.generate(p_high, max_new_tokens=6)
        with ServingEngine(model, plan_cache=False, decode_slots=1) as engine:
            f_low = engine.generate(p_low, GenerationRequest(max_new_tokens=24, priority=0))
            time.sleep(0.06)  # let the low-priority request occupy the only slot
            f_high = engine.generate(p_high, GenerationRequest(max_new_tokens=6, priority=5))
            np.testing.assert_array_equal(f_high.result(timeout=120), ref_high)
            np.testing.assert_array_equal(f_low.result(timeout=120), ref_low)
            stats = engine.stats["generation"]
        assert stats["preemptions"] >= 1
        assert stats["restores"] >= 1

    def test_preempted_beam_restores_identically(self):
        model = slow_lm(seed=2)
        p_low, p_high = np.array([5, 6]), np.array([1, 2, 3])
        ref_low = model.generate(p_low, max_new_tokens=8, beam_size=2)
        with ServingEngine(model, plan_cache=False, decode_slots=2) as engine:
            f_low = engine.generate(
                p_low, GenerationRequest(max_new_tokens=8, beam_size=2, priority=0)
            )
            time.sleep(0.05)
            f_high = engine.generate(p_high, GenerationRequest(max_new_tokens=4, priority=9))
            f_high.result(timeout=120)
            np.testing.assert_array_equal(f_low.result(timeout=120), ref_low)

    def test_drain_admission_mode(self):
        model = small_lm()
        p1, p2 = np.array([1, 2, 3]), np.array([7, 8])
        with ServingEngine(
            model, plan_cache=False, decode_slots=8, generation_admission="drain"
        ) as engine:
            f1 = engine.generate(p1, GenerationRequest(max_new_tokens=8))
            f2 = engine.generate(p2, GenerationRequest(max_new_tokens=8))
            np.testing.assert_array_equal(
                f1.result(timeout=60), model.generate(p1, max_new_tokens=8)
            )
            np.testing.assert_array_equal(
                f2.result(timeout=60), model.generate(p2, max_new_tokens=8)
            )

    def test_memory_budget_caps_slots(self):
        model = small_lm()
        probe = model.new_decode_state(1)
        budget = 3 * probe.row_nbytes + probe.row_nbytes // 2
        with ServingEngine(
            model, plan_cache=False, decode_slots=16, decode_memory_budget=budget
        ) as engine:
            future = engine.generate(np.array([1, 2]), GenerationRequest(max_new_tokens=2))
            future.result(timeout=60)
            assert engine.stats["generation"]["slots"] == 3

    def test_generation_deadline_expires_in_queue(self):
        model = slow_lm(step_delay_s=0.03)
        with ServingEngine(model, plan_cache=False, decode_slots=1) as engine:
            f_long = engine.generate(np.array([1, 2, 3]), GenerationRequest(max_new_tokens=20))
            time.sleep(0.05)
            # same priority: cannot preempt, and the running request outlives
            # the 1ms deadline budget
            f_late = engine.generate(
                np.array([7, 8]), GenerationRequest(max_new_tokens=4, deadline_ms=1.0)
            )
            with pytest.raises(DeadlineExceeded):
                f_late.result(timeout=120)
            f_long.result(timeout=120)
            assert engine.stats["generation"]["expired"] >= 1

    def test_generate_rejects_bad_prompts_and_models(self):
        model = small_lm(max_seq_len=8)
        with ServingEngine(model, plan_cache=False) as engine:
            with pytest.raises(ValueError, match="exceeds max_seq_len"):
                engine.generate(np.arange(9) % 8, GenerationRequest(max_new_tokens=2))
            with pytest.raises(ValueError, match="no room"):
                engine.generate(np.arange(8) % 8, GenerationRequest(max_new_tokens=2))
        mlp = nn.Sequential(nn.Linear(4, 4, rng=0)).eval()
        with ServingEngine(mlp, plan_cache=False) as engine:
            with pytest.raises(TypeError, match="generation"):
                engine.generate(np.array([1, 2]), GenerationRequest())

    def test_generation_stats_shape(self):
        model = small_lm()
        with ServingEngine(model, plan_cache=False) as engine:
            engine.generate(np.array([1, 2, 3]), GenerationRequest(max_new_tokens=6)).result(
                timeout=60
            )
            stats = engine.stats["generation"]
        assert stats["sequences"] == 1
        assert stats["generated_tokens"] == 6
        assert stats["tokens_per_s"] > 0
        assert "prefill_p50_ms" in stats and "prefill_p95_ms" in stats

    def test_close_drains_inflight_generations(self):
        model = slow_lm()
        engine = ServingEngine(model, plan_cache=False)
        future = engine.generate(np.array([1, 2, 3]), GenerationRequest(max_new_tokens=12))
        engine.close()
        assert future.done()
        np.testing.assert_array_equal(
            future.result(timeout=1), model.generate(np.array([1, 2, 3]), max_new_tokens=12)
        )
        with pytest.raises(RuntimeError, match="closed"):
            engine.generate(np.array([1, 2]), GenerationRequest())


class TestTokenScheduler:
    class Item:
        def __init__(self, slots, priority, order, deadline=None):
            self.slots = slots
            self.priority = priority
            self.order = order
            self.deadline = deadline
            self.submitted = 0.0

    def test_admits_in_urgency_order_within_budget(self):
        scheduler = TokenScheduler(4)
        low = self.Item(3, 0, 0)
        high = self.Item(3, 2, 1)
        scheduler.add(low)
        scheduler.add(high)
        admitted, preempted, expired = scheduler.plan(0.0)
        assert admitted == [high] and not preempted and not expired
        assert scheduler.free_slots == 1

    def test_preempts_only_strictly_less_urgent(self):
        scheduler = TokenScheduler(2)
        first = self.Item(2, 0, 0)
        scheduler.add(first)
        assert scheduler.plan(0.0)[0] == [first]
        equal = self.Item(2, 0, 1)
        scheduler.add(equal)
        admitted, preempted, _ = scheduler.plan(0.0)
        assert not admitted and not preempted  # equal urgency never preempts
        urgent = self.Item(2, 5, 2)
        scheduler.add(urgent)
        admitted, preempted, _ = scheduler.plan(0.0)
        assert admitted == [urgent] and preempted == [first]
        # the evictee cannot bounce back while its evictor runs
        admitted, preempted, _ = scheduler.plan(0.0)
        assert not admitted and not preempted

    def test_drain_mode_blocks_admission_until_empty(self):
        scheduler = TokenScheduler(8, admission="drain")
        first = self.Item(2, 0, 0)
        scheduler.add(first)
        assert scheduler.plan(0.0)[0] == [first]
        second = self.Item(2, 0, 1)
        scheduler.add(second)
        assert scheduler.plan(0.0) == ([], [], [])
        scheduler.on_finished(first)
        assert scheduler.plan(0.0)[0] == [second]

    def test_expiry_and_oversized_sessions(self):
        scheduler = TokenScheduler(2)
        with pytest.raises(ValueError, match="slots"):
            scheduler.add(self.Item(3, 0, 0))
        stale = self.Item(1, 0, 1, deadline=1.0)
        scheduler.add(stale)
        admitted, _, expired = scheduler.plan(2.0)
        assert expired == [stale] and not admitted
