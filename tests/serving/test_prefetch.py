"""BlockPrefetcher: identical blocks, overlap plumbing, failure propagation."""

import numpy as np
import pytest

from repro.fp8 import E4M3
from repro.fp8.quantize import QuantizedTensor
from repro.serving import BlockPrefetcher


def _packed(shape=(70, 16), seed=0):
    x = np.random.default_rng(seed).normal(0, 1, shape).astype(np.float32)
    return QuantizedTensor.quantize(x, E4M3, axis=0)


class TestBlockPrefetcher:
    def test_blocks_bit_identical_to_sequential(self):
        wq = _packed()
        prefetched = list(BlockPrefetcher(wq, block_channels=32))
        spans = [(s, e) for s, e in BlockPrefetcher(wq, block_channels=32).spans()]
        assert spans == [(0, 32), (32, 64), (64, 70)]
        assert [(s, e) for s, e, _ in prefetched] == spans
        for start, stop, block in prefetched:
            assert np.array_equal(block, wq.dequantize_block(start, stop, axis=0))

    def test_reiterable(self):
        prefetcher = BlockPrefetcher(_packed(), block_channels=16)
        first = [b for *_, b in prefetcher]
        second = [b for *_, b in prefetcher]
        assert len(first) == len(second) == 5
        for a, b in zip(first, second):
            assert np.array_equal(a, b)

    def test_single_block_tensor(self):
        wq = _packed((8, 4))
        blocks = list(BlockPrefetcher(wq, block_channels=512))
        assert len(blocks) == 1
        assert np.array_equal(blocks[0][2], wq.dequantize())

    def test_depth_and_block_validation(self):
        wq = _packed()
        with pytest.raises(ValueError, match="block_channels"):
            BlockPrefetcher(wq, block_channels=0)
        with pytest.raises(ValueError, match="depth"):
            BlockPrefetcher(wq, block_channels=8, depth=0)

    def test_decode_error_propagates_to_consumer(self):
        wq = _packed()

        class _Boom(QuantizedTensor):
            def dequantize_block(self, start, stop, axis=0):
                if start >= 32:
                    raise RuntimeError("decode exploded")
                return super().dequantize_block(start, stop, axis=axis)

        broken = _Boom(codes=wq.codes, scale=wq.scale, fmt=wq.fmt)
        with pytest.raises(RuntimeError, match="decode exploded"):
            list(BlockPrefetcher(broken, block_channels=32))

    def test_early_abandonment_stops_worker(self):
        wq = _packed((512, 8))
        iterator = iter(BlockPrefetcher(wq, block_channels=8))
        next(iterator)
        iterator.close()  # must not hang or leak a blocked thread


class _FakeLayer:
    """Duck-typed streaming wrapper: packed weight + a block size."""

    def __init__(self, wq, block):
        self.weight_q = wq
        self._block = block

    def streaming_block_size(self):
        return self._block


def _layers(count=3, shape=(48, 8), block=16):
    return [_FakeLayer(_packed(shape, seed=seed), block) for seed in range(count)]


class TestPipelinePrefetcher:
    def test_blocks_bit_identical_and_in_order(self):
        from repro.serving import PipelinePrefetcher

        layers = _layers()
        pipeline = PipelinePrefetcher(layers, depth=4, workers=2)
        try:
            for layer in layers:
                blocks = list(pipeline.iter_blocks(layer))
                assert [(s, e) for s, e, _ in blocks] == [(0, 16), (16, 32), (32, 48)]
                for start, stop, block in blocks:
                    assert np.array_equal(
                        block, layer.weight_q.dequantize_block(start, stop, axis=0)
                    )
        finally:
            pipeline.close()

    def test_window_crosses_layer_boundary(self):
        """While layer k's tail is consumed, layer k+1's head is in flight."""
        from repro.serving import PipelinePrefetcher

        layers = _layers(count=2)
        pipeline = PipelinePrefetcher(layers, depth=4, workers=1)
        try:
            iterator = pipeline.iter_blocks(layers[0])
            next(iterator)  # consume block 0 of layer 0, window refills
            run = pipeline._local.run
            pending_modules = {entry[0] for entry in run._pending}
            assert layers[1] in pending_modules
            # draining the rest stays correct
            rest = list(iterator)
            assert [(s, e) for s, e, _ in rest] == [(16, 32), (32, 48)]
            assert [(s, e) for s, e, _ in pipeline.iter_blocks(layers[1])] == [
                (0, 16),
                (16, 32),
                (32, 48),
            ]
        finally:
            pipeline.close()

    def test_out_of_order_layer_restarts_window(self):
        from repro.serving import PipelinePrefetcher

        layers = _layers(count=3)
        pipeline = PipelinePrefetcher(layers, depth=2, workers=1)
        try:
            # ask for the *last* layer first (dynamic control flow)
            blocks = list(pipeline.iter_blocks(layers[2]))
            assert len(blocks) == 3
            # then a full in-order pass still works
            for layer in layers:
                assert len(list(pipeline.iter_blocks(layer))) == 3
        finally:
            pipeline.close()

    def test_abandoned_pass_restarts_from_block_zero(self):
        from repro.serving import PipelinePrefetcher

        layers = _layers(count=2)
        pipeline = PipelinePrefetcher(layers, depth=2, workers=1)
        try:
            iterator = pipeline.iter_blocks(layers[0])
            first = next(iterator)
            assert first[0] == 0
            del iterator  # abandoned mid-layer
            restart = list(pipeline.iter_blocks(layers[0]))
            assert [(s, e) for s, e, _ in restart] == [(0, 16), (16, 32), (32, 48)]
        finally:
            pipeline.close()

    def test_reusable_across_passes(self):
        from repro.serving import PipelinePrefetcher

        layers = _layers(count=2)
        pipeline = PipelinePrefetcher(layers, depth=3, workers=2)
        try:
            for _ in range(3):
                for layer in layers:
                    blocks = list(pipeline.iter_blocks(layer))
                    assert len(blocks) == 3
        finally:
            pipeline.close()

    def test_unknown_module_decodes_standalone(self):
        from repro.serving import PipelinePrefetcher

        layers = _layers(count=1)
        stranger = _FakeLayer(_packed((32, 4), seed=9), 16)
        pipeline = PipelinePrefetcher(layers, depth=2, workers=1)
        try:
            blocks = list(pipeline.iter_blocks(stranger))
            assert [(s, e) for s, e, _ in blocks] == [(0, 16), (16, 32)]
        finally:
            pipeline.close()

    def test_close_then_reuse_recreates_pool(self):
        from repro.serving import PipelinePrefetcher

        layers = _layers(count=1)
        pipeline = PipelinePrefetcher(layers)
        assert len(list(pipeline.iter_blocks(layers[0]))) == 3
        pipeline.close()
        # a fresh iteration after close lazily re-creates the pool; the
        # stale thread-local run (cancelled futures) must not leak into it
        assert len(list(pipeline.iter_blocks(layers[0]))) == 3
        pipeline.close()

    def test_validation(self):
        from repro.serving import PipelinePrefetcher

        with pytest.raises(ValueError, match="at least one"):
            PipelinePrefetcher([])
        with pytest.raises(ValueError, match="depth"):
            PipelinePrefetcher(_layers(1), depth=0)
        with pytest.raises(ValueError, match="workers"):
            PipelinePrefetcher(_layers(1), workers=0)
