"""BlockPrefetcher: identical blocks, overlap plumbing, failure propagation."""

import numpy as np
import pytest

from repro.fp8 import E4M3
from repro.fp8.quantize import QuantizedTensor
from repro.serving import BlockPrefetcher


def _packed(shape=(70, 16), seed=0):
    x = np.random.default_rng(seed).normal(0, 1, shape).astype(np.float32)
    return QuantizedTensor.quantize(x, E4M3, axis=0)


class TestBlockPrefetcher:
    def test_blocks_bit_identical_to_sequential(self):
        wq = _packed()
        prefetched = list(BlockPrefetcher(wq, block_channels=32))
        spans = [(s, e) for s, e in BlockPrefetcher(wq, block_channels=32).spans()]
        assert spans == [(0, 32), (32, 64), (64, 70)]
        assert [(s, e) for s, e, _ in prefetched] == spans
        for start, stop, block in prefetched:
            assert np.array_equal(block, wq.dequantize_block(start, stop, axis=0))

    def test_reiterable(self):
        prefetcher = BlockPrefetcher(_packed(), block_channels=16)
        first = [b for *_, b in prefetcher]
        second = [b for *_, b in prefetcher]
        assert len(first) == len(second) == 5
        for a, b in zip(first, second):
            assert np.array_equal(a, b)

    def test_single_block_tensor(self):
        wq = _packed((8, 4))
        blocks = list(BlockPrefetcher(wq, block_channels=512))
        assert len(blocks) == 1
        assert np.array_equal(blocks[0][2], wq.dequantize())

    def test_depth_and_block_validation(self):
        wq = _packed()
        with pytest.raises(ValueError, match="block_channels"):
            BlockPrefetcher(wq, block_channels=0)
        with pytest.raises(ValueError, match="depth"):
            BlockPrefetcher(wq, block_channels=8, depth=0)

    def test_decode_error_propagates_to_consumer(self):
        wq = _packed()

        class _Boom(QuantizedTensor):
            def dequantize_block(self, start, stop, axis=0):
                if start >= 32:
                    raise RuntimeError("decode exploded")
                return super().dequantize_block(start, stop, axis=axis)

        broken = _Boom(codes=wq.codes, scale=wq.scale, fmt=wq.fmt)
        with pytest.raises(RuntimeError, match="decode exploded"):
            list(BlockPrefetcher(broken, block_channels=32))

    def test_early_abandonment_stops_worker(self):
        wq = _packed((512, 8))
        iterator = iter(BlockPrefetcher(wq, block_channels=8))
        next(iterator)
        iterator.close()  # must not hang or leak a blocked thread
