"""Two-phase checkpoint round-trip check for CI (save and load in separate processes).

Phase 1 (``save``) quantizes a small deterministic model, writes the packed
checkpoint plus a reference bundle (packed codes/scales per module and eval
outputs on a fixed probe batch).  Phase 2 (``load``) runs in a **fresh
process** — no state can leak through module globals — loads the checkpoint
via ``repro.serialization.load_quantized`` and asserts:

* packed codes, scales and zero points are bit-identical to the reference;
* forward outputs on the probe batch are bit-identical;
* the loaded model is restore-free and its at-rest resident bytes are
  <= 0.35x of the dense float32 model;
* the streaming serving mode agrees with the cached outputs.

Usage::

    python tools/ci_checkpoint_roundtrip.py save --dir /tmp/roundtrip
    python tools/ci_checkpoint_roundtrip.py load --dir /tmp/roundtrip
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

import repro.nn as nn  # noqa: E402
from repro.autograd.tensor import Tensor  # noqa: E402
from repro.quantization import (  # noqa: E402
    QuantizedModule,
    quantize_model,
    resident_report,
    set_serving_mode,
    standard_recipe,
)
from repro.serialization import load_quantized, save_quantized  # noqa: E402

#: at-rest resident bytes of the loaded model vs dense float32 (acceptance)
RESIDENT_RATIO_GATE = 0.35

CKPT_NAME = "model.rpq"
REF_NAME = "reference.npz"


def build_model() -> nn.Sequential:
    rng = np.random.default_rng(1234)
    return nn.Sequential(
        nn.Linear(128, 256, rng=rng),
        nn.ReLU(),
        nn.Linear(256, 256, rng=rng),
        nn.ReLU(),
        nn.Linear(256, 64, rng=rng),
    )


def probe_batch() -> np.ndarray:
    rng = np.random.default_rng(99)
    return rng.normal(0.0, 1.0, (32, 128)).astype(np.float32)


def calibration_batches():
    rng = np.random.default_rng(7)
    return [rng.normal(0.0, 1.0, (32, 128)).astype(np.float32) for _ in range(4)]


def _packed_reference(model) -> dict:
    arrays = {}
    for name, module in model.named_modules():
        if isinstance(module, QuantizedModule) and module.weight_q is not None:
            arrays[f"{name}.codes"] = module.weight_q.codes
            arrays[f"{name}.scale"] = np.asarray(module.weight_q.scale)
            if module.weight_q.zero_point is not None:
                arrays[f"{name}.zero_point"] = np.asarray(module.weight_q.zero_point)
    return arrays


def phase_save(directory: str) -> None:
    os.makedirs(directory, exist_ok=True)
    recipe = standard_recipe("E4M3")
    model = build_model()
    model.eval()
    result = quantize_model(model, recipe, calibration_data=calibration_batches())
    outputs = result.model(Tensor(probe_batch())).data

    ckpt_path = os.path.join(directory, CKPT_NAME)
    file_bytes = save_quantized(result.model, ckpt_path, recipe=recipe)
    np.savez(
        os.path.join(directory, REF_NAME),
        __outputs__=outputs,
        **_packed_reference(result.model),
    )
    print(f"saved {ckpt_path} ({file_bytes} bytes) + reference outputs {outputs.shape}")


def phase_load(directory: str) -> None:
    ckpt_path = os.path.join(directory, CKPT_NAME)
    reference = np.load(os.path.join(directory, REF_NAME))

    loaded = load_quantized(ckpt_path, build_model)
    resident = resident_report(loaded)
    assert resident["ratio"] <= RESIDENT_RATIO_GATE, (
        f"loaded at-rest resident bytes {resident['ratio']:.3f}x exceed the "
        f"{RESIDENT_RATIO_GATE}x gate"
    )

    packed = _packed_reference(loaded)
    mismatches = [
        key
        for key in reference.files
        if key != "__outputs__" and not np.array_equal(reference[key], packed[key])
    ]
    assert not mismatches, f"packed payloads changed across the process boundary: {mismatches}"

    outputs = loaded(Tensor(probe_batch())).data
    assert np.array_equal(outputs, reference["__outputs__"]), (
        "forward outputs diverge from the save-time model"
    )

    for _, module in loaded.named_modules():
        if isinstance(module, QuantizedModule):
            try:
                module.restore()
            except RuntimeError:
                pass
            else:
                raise AssertionError("restore() must raise on a loaded (restore-free) model")

    set_serving_mode(loaded, "streaming")
    streaming_outputs = loaded(Tensor(probe_batch())).data
    assert np.allclose(outputs, streaming_outputs, rtol=1e-5, atol=1e-6), (
        "streaming serving outputs diverge from cached outputs"
    )
    print(
        "fresh-process load ok: codes/scales bit-identical, outputs bit-identical, "
        f"resident {resident['ratio']:.3f}x <= {RESIDENT_RATIO_GATE}x, streaming agrees"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("phase", choices=("save", "load"))
    parser.add_argument("--dir", default="/tmp/repro-roundtrip", help="working directory")
    args = parser.parse_args()
    if args.phase == "save":
        phase_save(args.dir)
    else:
        phase_load(args.dir)


if __name__ == "__main__":
    main()
