"""Cross-PR perf-trajectory history over merged BENCH_PR.json snapshots.

Every CI bench job writes its sections into a ``BENCH_PR.json`` artifact (see
``benchmarks/bench_report.py``).  Artifacts are per-run and expire, so the
trajectory across PRs used to be empty.  This tool keeps a *committed* history
under ``benchmarks/trajectory/``: on every push to main the ``trajectory`` CI
job merges the per-job artifacts and appends the snapshot here.

Usage::

    # merge one or more BENCH_PR.json files and append a labelled snapshot
    python tools/bench_trajectory.py append BENCH_PR.json [more.json ...] \
        [--label <git-sha>] [--dir benchmarks/trajectory]

    # print the metric trajectory across all committed snapshots
    python tools/bench_trajectory.py show [--dir benchmarks/trajectory]

``append`` writes ``NNNN-<label>.json`` (label defaults to the short git HEAD
sha) and refreshes ``index.json``, the ordered list of snapshots.  ``show``
walks the history and prints one line per snapshot with a few headline
numbers per section, so ``git log``-level archaeology is never needed to see
whether a PR moved the needle.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys

DEFAULT_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "benchmarks", "trajectory"
)

_SNAPSHOT_RE = re.compile(r"^(\d{4})-(.+)\.json$")


def _git_label() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "local"


def _load(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict):
        raise SystemExit(f"{path}: expected a JSON object, got {type(data).__name__}")
    return data


def _merge(paths: list[str]) -> dict:
    """Merge per-job BENCH_PR.json files; sections are disjoint except 'env'."""
    merged: dict = {}
    for path in paths:
        for section, payload in _load(path).items():
            if section == "env" and "env" in merged:
                continue
            merged[section] = payload
    return merged


def _snapshots(directory: str) -> list[tuple[int, str, str]]:
    """Ordered ``(seq, label, path)`` triples for the committed history."""
    entries = []
    if not os.path.isdir(directory):
        return entries
    for name in sorted(os.listdir(directory)):
        m = _SNAPSHOT_RE.match(name)
        if m:
            entries.append((int(m.group(1)), m.group(2), os.path.join(directory, name)))
    return entries


def _write_index(directory: str) -> None:
    index = [
        {"seq": seq, "label": label, "file": os.path.basename(path)}
        for seq, label, path in _snapshots(directory)
    ]
    with open(os.path.join(directory, "index.json"), "w", encoding="utf-8") as fh:
        json.dump(index, fh, indent=2)
        fh.write("\n")


def cmd_append(args: argparse.Namespace) -> int:
    merged = _merge(args.inputs)
    if not merged or set(merged) == {"env"}:
        raise SystemExit("refusing to append an empty snapshot (no benchmark sections)")
    label = args.label or _git_label()
    history = _snapshots(args.dir)
    if history and any(lbl == label for _, lbl, _ in history):
        print(f"snapshot for label {label!r} already recorded; nothing to do")
        return 0
    seq = history[-1][0] + 1 if history else 1
    os.makedirs(args.dir, exist_ok=True)
    path = os.path.join(args.dir, f"{seq:04d}-{label}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(merged, fh, indent=2, sort_keys=True)
        fh.write("\n")
    _write_index(args.dir)
    sections = sorted(k for k in merged if k != "env")
    print(f"appended snapshot {seq:04d}-{label}.json with sections: {', '.join(sections)}")
    return 0


def _headline(section: str, payload: object) -> str:
    """A compact one-liner for a section: the few scalar numbers that matter."""
    if not isinstance(payload, dict):
        return str(payload)
    picked = []
    for key, value in payload.items():
        if isinstance(value, bool):
            picked.append(f"{key}={value}")
        elif isinstance(value, (int, float)):
            picked.append(f"{key}={value:.4g}" if isinstance(value, float) else f"{key}={value}")
        if len(picked) >= 4:
            break
    return ", ".join(picked) if picked else f"{len(payload)} entries"


def cmd_show(args: argparse.Namespace) -> int:
    history = _snapshots(args.dir)
    if not history:
        print(f"no snapshots under {args.dir}")
        return 1
    for seq, label, path in history:
        data = _load(path)
        print(f"{seq:04d} {label}")
        for section in sorted(k for k in data if k != "env"):
            print(f"    {section}: {_headline(section, data[section])}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    p_append = sub.add_parser("append", help="append a merged BENCH_PR.json snapshot")
    p_append.add_argument("inputs", nargs="+", help="BENCH_PR.json files to merge")
    p_append.add_argument("--label", default=None, help="snapshot label (default: git short sha)")
    p_append.add_argument("--dir", default=DEFAULT_DIR, help="trajectory directory")
    p_append.set_defaults(func=cmd_append)

    p_show = sub.add_parser("show", help="print the committed metric trajectory")
    p_show.add_argument("--dir", default=DEFAULT_DIR, help="trajectory directory")
    p_show.set_defaults(func=cmd_show)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
