"""Offline checkpoint scrubber: verify every payload span's integrity digest.

Version-2 containers record a crc32 per payload span (see
``repro.serialization.container``); serving verifies them at load (copied) or
first touch (mmap).  This tool is the third leg: scrub checkpoints **at
rest** — after a transfer, on a cron over a model store, before promoting a
build — without constructing any model.  It streams each span through crc32,
so peak memory is one read chunk regardless of checkpoint size.

Usage::

    python tools/verify_checkpoint.py model.rpq [more.rpq ...] [--json]

Exit status: 0 if every file verifies (version-1 files, which carry no
digests, count as ``skipped`` spans and pass), 1 on the first corrupt or
structurally invalid file.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.serialization.container import CheckpointError, ChecksumError, verify_container


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+", help="packed checkpoint files (.rpq)")
    parser.add_argument("--json", action="store_true", help="emit one JSON report per file")
    args = parser.parse_args(argv)

    status = 0
    for path in args.paths:
        try:
            report = verify_container(path)
        except ChecksumError as exc:
            print(f"CORRUPT  {path}: {exc}", file=sys.stderr)
            status = 1
            continue
        except (CheckpointError, OSError) as exc:
            print(f"INVALID  {path}: {exc}", file=sys.stderr)
            status = 1
            continue
        if args.json:
            print(json.dumps(report, sort_keys=True))
        else:
            print(
                f"OK       {path}: v{report['version']}, "
                f"{report['verified']}/{report['arrays']} spans verified"
                + (f" ({report['skipped']} without digests)" if report["skipped"] else "")
            )
    return status


if __name__ == "__main__":
    raise SystemExit(main())
