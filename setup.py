"""Setuptools shim so `pip install -e . --no-use-pep517` works offline (no wheel package)."""

from setuptools import setup

setup()
